"""Tests for the bitmask graph view (:mod:`repro.graph.bitset`).

The bitmask layer must agree exactly with the set-based algorithms in
:mod:`repro.graph.connectivity` — it is a faster representation, never a
different semantics — so most tests here are differential over random graphs.
"""

import random

import pytest

from repro.graph import (
    BitsetDiGraph,
    DiGraph,
    ProcessIndex,
    can_reach,
    iter_bits,
    mutually_reachable,
    popcount,
    reachable_from,
    strongly_connected_components,
)


def _random_digraph(rng, n, edge_prob):
    names = ["v{}".format(i) for i in range(n)]
    graph = DiGraph(vertices=names)
    for src in names:
        for dst in names:
            if src != dst and rng.random() < edge_prob:
                graph.add_edge(src, dst)
    return graph


def test_iter_bits_and_popcount():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b101001)) == [0, 3, 5]
    assert popcount(0) == 0
    assert popcount(0b101001) == 3


def test_process_index_is_sorted_and_stable():
    index = ProcessIndex(["c", "a", "b", "a"])
    assert index.processes == ("a", "b", "c")
    assert index.position("a") == 0
    assert index.process_at(2) == "c"
    assert index.mask_of(["a", "c"]) == 0b101
    assert index.set_of(0b101) == frozenset({"a", "c"})
    assert index.sorted_list(0b110) == ["b", "c"]
    assert index.full_mask == 0b111
    assert len(index) == 3
    assert "a" in index and "z" not in index


def test_from_digraph_round_trip():
    graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")])
    view = BitsetDiGraph.from_digraph(graph)
    index = view.index
    assert view.num_vertices() == 3
    assert view.successor_mask(index.position("a")) == index.mask_of(["b", "c"])
    assert view.predecessor_mask(index.position("c")) == index.mask_of(["a", "b"])


def test_reachability_matches_set_based_algorithms():
    rng = random.Random(5)
    for _ in range(25):
        graph = _random_digraph(rng, rng.randint(2, 9), rng.choice([0.1, 0.25, 0.5]))
        view = BitsetDiGraph.from_digraph(graph)
        index = view.index
        for v in graph.vertices:
            mask = index.mask_of([v])
            assert index.set_of(view.reachable_mask(mask)) == reachable_from(graph, [v])
            assert index.set_of(view.can_reach_mask(mask)) == can_reach(graph, [v])


def test_scc_masks_match_tarjan_partition():
    rng = random.Random(11)
    for _ in range(25):
        graph = _random_digraph(rng, rng.randint(2, 9), rng.choice([0.15, 0.3, 0.6]))
        view = BitsetDiGraph.from_digraph(graph)
        fast = {view.index.set_of(mask) for mask in view.scc_masks()}
        slow = set(strongly_connected_components(graph))
        assert fast == slow


def test_scc_masks_order_is_canonical():
    graph = DiGraph(edges=[("d", "c"), ("c", "d"), ("a", "b"), ("b", "a"), ("b", "c")])
    view = BitsetDiGraph.from_digraph(graph)
    components = [view.index.set_of(mask) for mask in view.scc_masks()]
    # Ordered by lowest member in ProcessIndex (i.e. sorted) order.
    assert components == [frozenset({"a", "b"}), frozenset({"c", "d"})]


def test_mutually_reachable_matches_set_based():
    rng = random.Random(3)
    for _ in range(20):
        graph = _random_digraph(rng, rng.randint(2, 7), 0.3)
        view = BitsetDiGraph.from_digraph(graph)
        index = view.index
        for _ in range(5):
            k = rng.randint(1, len(graph.vertices))
            subset = rng.sample(graph.vertices, k)
            assert view.mutually_reachable(index.mask_of(subset)) == mutually_reachable(
                graph, subset
            )


def test_residual_matches_digraph_without():
    rng = random.Random(7)
    for _ in range(20):
        graph = _random_digraph(rng, rng.randint(3, 8), 0.4)
        view = BitsetDiGraph.from_digraph(graph)
        vertices = graph.vertices
        crashed = rng.sample(vertices, rng.randint(0, len(vertices) - 1))
        survivors = [v for v in vertices if v not in crashed]
        edges = [
            (s, d)
            for s in survivors
            for d in survivors
            if s != d and graph.has_edge(s, d) and rng.random() < 0.3
        ]
        residual_view = view.residual(crashed, edges)
        residual_graph = graph.without(vertices=crashed, edges=edges)
        index = view.index
        assert index.set_of(residual_view.vertex_mask) == residual_graph.vertex_set
        for v in residual_graph.vertices:
            assert index.set_of(
                residual_view.successor_mask(index.position(v))
            ) == frozenset(residual_graph.successors(v))
            assert index.set_of(
                residual_view.predecessor_mask(index.position(v))
            ) == frozenset(residual_graph.predecessors(v))


def test_mutually_reachable_rejects_absent_vertices():
    graph = DiGraph(edges=[("a", "b"), ("b", "a"), ("a", "c")])
    view = BitsetDiGraph.from_digraph(graph)
    index = view.index
    residual = view.residual(["c"], [])
    assert residual.mutually_reachable(index.mask_of(["a", "b"]))
    assert not residual.mutually_reachable(index.mask_of(["a", "c"]))


# --------------------------------------------------------------------- #
# Failure-pattern mask encoding (the Monte Carlo bitset engine's currency)
# --------------------------------------------------------------------- #
def test_failure_masks_round_trip_on_random_fail_prone_systems():
    from repro.failures import random_fail_prone_system

    for seed in range(15):
        system = random_fail_prone_system(
            n=3 + seed % 6,
            num_patterns=4,
            crash_prob=0.3,
            disconnect_prob=0.4,
            seed=seed,
        )
        index = ProcessIndex(system.processes)
        for pattern in system:
            crash_mask, succ_clear = index.failure_masks(
                pattern.crash_prone, pattern.disconnect_prone
            )
            assert index.set_of(crash_mask) == pattern.crash_prone
            assert index.channels_of(succ_clear) == pattern.disconnect_prone
            # Rows never mention a source with nothing to clear.
            assert all(row for row in succ_clear.values())


def test_residual_masks_equals_named_residual():
    rng = random.Random(19)
    for _ in range(20):
        graph = _random_digraph(rng, rng.randint(3, 9), 0.5)
        view = BitsetDiGraph.from_digraph(graph)
        index = view.index
        vertices = graph.vertices
        crashed = rng.sample(vertices, rng.randint(0, len(vertices) - 1))
        channels = [
            (s, d)
            for s in vertices
            for d in vertices
            if s != d and graph.has_edge(s, d) and rng.random() < 0.4
        ]
        by_name = view.residual(crashed, channels)
        by_mask = view.residual_masks(*index.failure_masks(crashed, channels))
        assert by_mask.vertex_mask == by_name.vertex_mask
        for position in range(len(index)):
            assert by_mask.successor_mask(position) == by_name.successor_mask(position)
            assert by_mask.predecessor_mask(position) == by_name.predecessor_mask(
                position
            )


def test_set_reaches_set_matches_connectivity():
    from repro.graph import set_reaches_set as slow_set_reaches_set

    rng = random.Random(23)
    for _ in range(20):
        graph = _random_digraph(rng, rng.randint(2, 8), 0.35)
        view = BitsetDiGraph.from_digraph(graph)
        index = view.index
        for _ in range(6):
            sources = rng.sample(graph.vertices, rng.randint(0, len(graph.vertices)))
            targets = rng.sample(graph.vertices, rng.randint(0, len(graph.vertices)))
            assert view.set_reaches_set(
                index.mask_of(sources), index.mask_of(targets)
            ) == slow_set_reaches_set(graph, sources, targets)


def test_component_containing_picks_unique_component():
    from repro.graph import component_containing

    components = [0b0011, 0b0100, 0b1000]
    assert component_containing(components, 0b0011) == 0b0011
    assert component_containing(components, 0b0001) == 0b0011
    assert component_containing(components, 0b1000) == 0b1000
    assert component_containing(components, 0b0101) is None  # straddles two
    assert component_containing(components, 0) is None


# --------------------------------------------------------------------- #
# Word-boundary sizes: Python ints are unbounded, but 63/64/65 vertices
# are where a fixed-width implementation would clip or sign-extend.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("n", [63, 64, 65])
def test_word_boundary_ring_reachability(n):
    names = ["v{:03d}".format(i) for i in range(n)]
    graph = DiGraph(vertices=names)
    for i in range(n):
        graph.add_edge(names[i], names[(i + 1) % n])
    view = BitsetDiGraph.from_digraph(graph)
    index = view.index
    full = (1 << n) - 1
    assert index.full_mask == full
    assert popcount(full) == n
    # Every vertex reaches the whole ring, so the ring is one SCC.
    assert view.reachable_mask(1) == full
    assert view.can_reach_mask(1 << (n - 1)) == full
    assert view.mutually_reachable(full)
    assert view.scc_masks() == [full]
    # Crash the top-position vertex: the ring breaks into a path; the
    # remaining graph has n-1 singleton SCCs and the top bit is gone.
    top = index.process_at(n - 1)
    residual = view.residual([top], [])
    assert residual.vertex_mask == full >> 1
    assert not residual.mutually_reachable(full >> 1)
    assert len(residual.scc_masks()) == n - 1
    # The path still reaches forward from its head across the word boundary.
    assert residual.reachable_mask(1) == full >> 1


@pytest.mark.parametrize("n", [63, 64, 65])
def test_word_boundary_matches_set_based(n):
    rng = random.Random(n)
    names = ["v{:03d}".format(i) for i in range(n)]
    graph = DiGraph(vertices=names)
    # Sparse random graph plus a ring to keep things connected enough.
    for i in range(n):
        graph.add_edge(names[i], names[(i + 1) % n])
    for _ in range(2 * n):
        src, dst = rng.sample(names, 2)
        graph.add_edge(src, dst)
    view = BitsetDiGraph.from_digraph(graph)
    index = view.index
    probe = rng.sample(names, 5)
    for v in probe:
        mask = index.mask_of([v])
        assert index.set_of(view.reachable_mask(mask)) == reachable_from(graph, [v])
        assert index.set_of(view.can_reach_mask(mask)) == can_reach(graph, [v])
    fast = {index.set_of(mask) for mask in view.scc_masks()}
    assert fast == set(strongly_connected_components(graph))


# ---------------------------------------------------------------------- #
# Mask permutations (the quotient-discovery / cache-remap primitive)
# ---------------------------------------------------------------------- #
def test_mask_permutation_matches_the_per_bit_reference():
    from repro.graph import MaskPermutation, permute_mask

    rng = random.Random(99)
    for n in (1, 7, 8, 9, 16, 40, 200):
        perm = list(range(n))
        rng.shuffle(perm)
        fast = MaskPermutation(perm)
        for _ in range(25):
            mask = rng.getrandbits(n)
            assert fast.apply(mask) == permute_mask(mask, perm)


def test_mask_permutation_rejects_non_permutations():
    from repro.graph import MaskPermutation

    with pytest.raises(ValueError):
        MaskPermutation([0, 0, 1])
    with pytest.raises(ValueError):
        MaskPermutation([1, 2, 3])


def test_mask_permutation_rejects_masks_outside_the_domain():
    from repro.graph import MaskPermutation

    perm = MaskPermutation([1, 0, 2])
    with pytest.raises(ValueError):
        perm.apply(1 << 3)


def test_mask_permutation_inverse_and_compose():
    from repro.graph import MaskPermutation

    rng = random.Random(7)
    n = 24
    a = list(range(n))
    b = list(range(n))
    rng.shuffle(a)
    rng.shuffle(b)
    pa, pb = MaskPermutation(a), MaskPermutation(b)
    composed = pa.compose(pb)  # apply pb first, then pa
    for _ in range(40):
        mask = rng.getrandbits(n)
        assert composed.apply(mask) == pa.apply(pb.apply(mask))
        assert pa.inverse().apply(pa.apply(mask)) == mask
    assert pa.compose(pa.inverse()).is_identity()
    assert MaskPermutation(list(range(5))).is_identity()
    assert not pa.is_identity() or a == list(range(n))


def test_orbit_and_canonical_mask():
    from repro.graph import MaskPermutation, canonical_orbit_mask, orbit_of_mask

    # The 4-cycle rotation acting on single bits: the orbit is all four bits,
    # the canonical representative the smallest integer (bit 0).
    rotation = MaskPermutation([1, 2, 3, 0])
    orbit = orbit_of_mask(0b0010, [rotation])
    assert orbit == frozenset({0b0001, 0b0010, 0b0100, 0b1000})
    assert canonical_orbit_mask(0b1000, [rotation]) == 0b0001
    # No permutations: the mask is its own canonical form.
    assert canonical_orbit_mask(0b1010, []) == 0b1010


def test_permutation_to_reindexes_shared_processes_exactly():
    old = ProcessIndex(["a", "b", "c", "d"])
    new = ProcessIndex(["a", "c", "d", "e"])  # b left, e joined
    perm = old.permutation_to(new)
    for process in ("a", "c", "d"):
        assert perm.apply(1 << old.position(process)) == 1 << new.position(process)
    # A mask over shared processes only re-indexes exactly.
    mask = old.mask_of(["a", "d"])
    assert perm.apply(mask) == new.mask_of(["a", "d"])


def test_permutation_to_stays_a_bijection_with_disjoint_leftovers():
    old = ProcessIndex(["a", "b", "c"])
    new = ProcessIndex(["b", "x", "y", "z"])
    perm = old.permutation_to(new)
    n = max(len(old), len(new))
    assert sorted(perm.perm) == list(range(n))
    assert perm.apply(1 << old.position("b")) == 1 << new.position("b")


def test_permutation_to_identity_on_equal_indices():
    index = ProcessIndex(["a", "b", "c"])
    assert index.permutation_to(ProcessIndex(["c", "b", "a"])).is_identity()
