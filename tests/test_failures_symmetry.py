"""Declared symmetry groups: validation, orbits, transports and the builders.

A :class:`~repro.failures.SymmetryGroup` is a *checked contract*: attaching it
to a :class:`~repro.failures.FailProneSystem` validates that every generator
is an automorphism of the network graph and of the pattern family.  These
tests pin the validation (accept and reject cases), the orbit machinery the
quotiented discovery path builds on, and the natural symmetries the
production-size builders of :mod:`repro.failures.generators` declare.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidSymmetryError
from repro.failures import (
    FailProneSystem,
    FailurePattern,
    SymmetryGroup,
    block_permutation,
    geo_replicated_system,
    large_threshold_system,
    multi_region_system,
    ring_unidirectional_system,
)
from repro.graph import DiGraph, ProcessIndex


def _ring_system(n: int) -> FailProneSystem:
    """A crash-threshold family on n processes, invariant under rotation."""
    processes = ["p{}".format(i) for i in range(n)]
    patterns = [FailurePattern([p], name="crash-{}".format(p)) for p in processes]
    rotation = {processes[i]: processes[(i + 1) % n] for i in range(n)}
    return FailProneSystem(
        processes, patterns, symmetry=SymmetryGroup([rotation], name="rot")
    )


# ---------------------------------------------------------------------- #
# Construction and validation
# ---------------------------------------------------------------------- #
def test_identity_generators_are_dropped():
    group = SymmetryGroup([{"a": "a", "b": "b"}, {}])
    assert group.is_trivial()
    assert len(group) == 0


def test_non_injective_generator_rejected():
    with pytest.raises(InvalidSymmetryError):
        SymmetryGroup([{"a": "c", "b": "c"}])


def test_valid_rotation_is_accepted_and_exposed():
    system = _ring_system(5)
    assert system.symmetry is not None
    assert len(system.symmetry) == 1


def test_generator_moving_unknown_process_rejected():
    with pytest.raises(InvalidSymmetryError):
        FailProneSystem(
            ["a", "b"],
            [FailurePattern()],
            symmetry=SymmetryGroup([{"a": "z", "z": "a"}]),
        )


def test_generator_that_is_not_a_bijection_rejected():
    # a -> b while b stays fixed: two processes collide on b.
    with pytest.raises(InvalidSymmetryError):
        FailProneSystem(
            ["a", "b"],
            [FailurePattern()],
            symmetry=SymmetryGroup([{"a": "b"}]),
        )


def test_generator_mapping_pattern_outside_family_rejected():
    # Swapping a and b maps crash({a}) to crash({b}), which is not declared.
    with pytest.raises(InvalidSymmetryError):
        FailProneSystem(
            ["a", "b"],
            [FailurePattern(["a"])],
            symmetry=SymmetryGroup([{"a": "b", "b": "a"}]),
        )


def test_generator_breaking_a_network_channel_rejected():
    # One-directional chain a -> b -> c: reversing the chain is no automorphism.
    graph = DiGraph()
    for p in ("a", "b", "c"):
        graph.add_vertex(p)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    with pytest.raises(InvalidSymmetryError):
        FailProneSystem(
            ["a", "b", "c"],
            [FailurePattern()],
            graph=graph,
            symmetry=SymmetryGroup([{"a": "c", "c": "a"}]),
        )


def test_complete_graph_accepts_any_pattern_preserving_bijection():
    # The same swap is fine once both patterns are declared (default graph is
    # complete, so the per-edge check never fires).
    system = FailProneSystem(
        ["a", "b"],
        [FailurePattern(["a"]), FailurePattern(["b"])],
        symmetry=SymmetryGroup([{"a": "b", "b": "a"}]),
    )
    assert system.symmetry is not None


# ---------------------------------------------------------------------- #
# Orbits and transports
# ---------------------------------------------------------------------- #
def test_process_orbits_of_the_rotation_are_one_cycle():
    system = _ring_system(6)
    orbits = system.symmetry.process_orbits(system.processes)
    assert orbits == [["p{}".format(i) for i in range(6)]]


def test_pattern_orbits_collapse_the_rotated_family():
    system = _ring_system(6)
    orbits = system.symmetry.pattern_orbits(system.patterns)
    assert len(orbits) == 1
    assert len(orbits[0]) == 6


def test_pattern_orbits_keep_asymmetric_patterns_separate():
    processes = ["a", "b", "c"]
    f_ab = FailurePattern(["a"])
    f_ba = FailurePattern(["b"])
    f_c = FailurePattern(["c"])
    group = SymmetryGroup([{"a": "b", "b": "a"}])
    orbits = group.pattern_orbits([f_ab, f_ba, f_c])
    assert orbits == [[f_ab, f_ba], [f_c]]
    assert group.process_orbits(processes) == [["a", "b"], ["c"]]


def test_orbit_transports_carry_representative_masks_onto_members():
    system = _ring_system(7)
    index = system.process_index
    transports = system.symmetry.orbit_transports(system.patterns, index)
    assert len(transports) == 7
    representatives = {rep for rep, _ in transports.values()}
    assert representatives == {system.patterns[0]}
    for pattern, (rep, transport) in transports.items():
        rep_mask = index.mask_of(rep.crash_prone)
        assert transport.apply(rep_mask) == index.mask_of(pattern.crash_prone)


def test_orbit_transports_are_identity_on_representatives():
    system = _ring_system(4)
    transports = system.symmetry.orbit_transports(
        system.patterns, system.process_index
    )
    rep, transport = transports[system.patterns[0]]
    assert rep == system.patterns[0]
    assert transport.is_identity()


def test_elements_enumerates_the_cyclic_group():
    system = _ring_system(5)
    elements = system.symmetry.elements(system.process_index)
    assert len(elements) == 5  # the rotation generates Z/5, identity included
    assert sum(1 for e in elements if e.is_identity()) == 1


def test_elements_refuses_to_enumerate_past_the_limit():
    system = _ring_system(6)
    with pytest.raises(InvalidSymmetryError):
        system.symmetry.elements(system.process_index, limit=3)


# ---------------------------------------------------------------------- #
# Construction helpers
# ---------------------------------------------------------------------- #
def test_block_permutation_maps_blocks_positionwise():
    mapping = block_permutation([["a", "b"], ["c", "d"]], [["c", "d"], ["a", "b"]])
    assert mapping == {"a": "c", "b": "d", "c": "a", "d": "b"}


def test_block_permutation_rejects_unequal_blocks():
    with pytest.raises(InvalidSymmetryError):
        block_permutation([["a", "b"]], [["c"]])


def test_from_cycles_builds_one_generator_per_cycle():
    group = SymmetryGroup.from_cycles([("a", "b", "c"), ("x", "y")])
    assert len(group) == 2
    assert group.generators[0] == {"a": "b", "b": "c", "c": "a"}
    assert group.generators[1] == {"x": "y", "y": "x"}


def test_bit_permutations_match_the_process_mapping():
    group = SymmetryGroup.from_cycles([("a", "b", "c")])
    index = ProcessIndex(["a", "b", "c"])
    (perm,) = group.bit_permutations(index)
    # a (bit 0) -> b (bit 1), etc.
    assert perm.apply(1 << index.position("a")) == 1 << index.position("b")
    assert perm.apply(1 << index.position("c")) == 1 << index.position("a")


# ---------------------------------------------------------------------- #
# The builders declare their natural symmetries
# ---------------------------------------------------------------------- #
def test_ring_builder_declares_the_rotation():
    system = ring_unidirectional_system(6)
    assert system.symmetry is not None
    assert system.symmetry.pattern_orbits(system.patterns) != [
        [f] for f in system.patterns
    ]


def test_geo_builder_declares_site_and_replica_symmetry():
    system = geo_replicated_system(sites=3, replicas_per_site=2)
    assert system.symmetry is not None
    assert len(system.symmetry) >= 2


def test_geo_builder_with_explicit_partitions_stays_asymmetric():
    # A hand-picked partitioned pair breaks the site symmetry, so no group may
    # be declared for it.
    system = geo_replicated_system(
        sites=3, replicas_per_site=2, partitioned_pairs=[(0, 1)]
    )
    assert system.symmetry is None


def test_multi_region_builder_declares_region_and_replica_symmetry():
    system = multi_region_system(regions=4, replicas_per_region=3)
    assert system.symmetry is not None
    orbits = system.symmetry.pattern_orbits(system.patterns)
    # All wan epochs collapse into one orbit; the blackout stays alone.
    assert sorted(len(orbit) for orbit in orbits) == [1, 3]


def test_large_threshold_builder_declares_window_rotation():
    system = large_threshold_system(n=12, max_crashes=3)
    assert system.symmetry is not None
    assert len(system.symmetry.pattern_orbits(system.patterns)) == 1


def test_zoned_threshold_symmetry_requires_equal_blocks():
    # n=26, zones=3: anchor of 4, two non-anchor blocks of 11 — symmetric.
    symmetric = large_threshold_system(n=26, max_crashes=2, zones=3, catastrophic=True)
    assert symmetric.symmetry is not None
    # n=60, zones=4: divmod splits 50 crashable into 17/17/16 — no rotation.
    lopsided = large_threshold_system(n=60, max_crashes=3, zones=4, catastrophic=True)
    assert lopsided.symmetry is None


def test_declared_builder_symmetries_are_revalidated_by_construction():
    """Every symmetric builder output passes a from-scratch validation."""
    for system in (
        ring_unidirectional_system(5),
        geo_replicated_system(sites=4, replicas_per_site=2),
        multi_region_system(regions=5, replicas_per_region=3),
        large_threshold_system(n=10, max_crashes=2),
    ):
        assert system.symmetry is not None
        rebuilt = FailProneSystem(
            system.processes,
            system.patterns,
            graph=system.graph,
            symmetry=system.symmetry,
        )
        assert rebuilt.symmetry is system.symmetry
