"""Tests for the register linearizability checkers."""

import pytest

from repro.checkers import DependencyGraphChecker, check_register_linearizability
from repro.errors import HistoryError
from repro.history import History, OperationRecord


def op(pid, kind, arg, result, start, end, op_id=None):
    if op_id is None:
        op_id = int(start * 1000) + hash(pid) % 97
    return OperationRecord(pid, kind, arg, result, start, end, op_id=op_id)


def history(*records):
    return History(records)


# --------------------------------------------------------------------------- #
# Wing-Gong checker: positive cases
# --------------------------------------------------------------------------- #
def test_empty_history_is_linearizable():
    assert bool(check_register_linearizability(history()))


def test_sequential_write_then_read():
    h = history(
        op("a", "write", 1, "ack", 0, 1),
        op("b", "read", None, 1, 2, 3),
    )
    assert bool(check_register_linearizability(h, initial_value=0))


def test_read_of_initial_value():
    h = history(op("a", "read", None, 0, 0, 1))
    assert bool(check_register_linearizability(h, initial_value=0))


def test_concurrent_reads_may_split_around_write():
    # Both reads overlap the write; one sees old, one sees new -> linearizable.
    h = history(
        op("a", "write", 1, "ack", 0, 10),
        op("b", "read", None, 0, 1, 2),
        op("c", "read", None, 1, 3, 4),
    )
    assert bool(check_register_linearizability(h, initial_value=0))


def test_concurrent_writes_any_order():
    h = history(
        op("a", "write", 1, "ack", 0, 10),
        op("b", "write", 2, "ack", 0, 10),
        op("c", "read", None, 1, 11, 12),
    )
    assert bool(check_register_linearizability(h, initial_value=0))


def test_incomplete_write_may_take_effect():
    h = history(
        op("a", "write", 5, None, 0, None),
        op("b", "read", None, 5, 10, 11),
    )
    assert bool(check_register_linearizability(h, initial_value=0))


def test_incomplete_write_may_be_ignored():
    h = history(
        op("a", "write", 5, None, 0, None),
        op("b", "read", None, 0, 10, 11),
    )
    assert bool(check_register_linearizability(h, initial_value=0))


def test_witness_is_a_valid_sequential_execution():
    h = history(
        op("a", "write", 1, "ack", 0, 1),
        op("b", "write", 2, "ack", 2, 3),
        op("c", "read", None, 2, 4, 5),
    )
    outcome = check_register_linearizability(h, initial_value=0)
    assert outcome.is_linearizable
    kinds = [record.kind for record in outcome.witness]
    assert kinds.count("read") == 1
    assert len(outcome.witness) == 3


# --------------------------------------------------------------------------- #
# Wing-Gong checker: negative cases
# --------------------------------------------------------------------------- #
def test_stale_read_after_write_completes_is_rejected():
    h = history(
        op("a", "write", 1, "ack", 0, 1),
        op("b", "read", None, 0, 2, 3),
    )
    outcome = check_register_linearizability(h, initial_value=0)
    assert not outcome.is_linearizable
    assert outcome.reason


def test_read_of_never_written_value_is_rejected():
    h = history(op("a", "read", None, 99, 0, 1))
    assert not check_register_linearizability(h, initial_value=0).is_linearizable


def test_new_old_inversion_rejected():
    # r1 follows r2 in real time but returns the older value.
    h = history(
        op("a", "write", 1, "ack", 0, 1),
        op("b", "write", 2, "ack", 2, 3),
        op("c", "read", None, 2, 4, 5),
        op("d", "read", None, 1, 6, 7),
    )
    assert not check_register_linearizability(h, initial_value=0).is_linearizable


def test_read_must_not_resurrect_overwritten_value():
    h = history(
        op("a", "write", 1, "ack", 0, 1),
        op("a", "write", 2, "ack", 2, 3),
        op("b", "read", None, 1, 4, 5),
    )
    assert not check_register_linearizability(h, initial_value=0).is_linearizable


def test_non_register_operation_rejected():
    h = history(op("a", "propose", 1, 1, 0, 1))
    with pytest.raises(HistoryError):
        check_register_linearizability(h)


def test_state_bound_guard():
    records = [op("p{}".format(i), "write", i, "ack", 0, 100, op_id=i) for i in range(12)]
    with pytest.raises(HistoryError):
        check_register_linearizability(History(records), max_states=10)


# --------------------------------------------------------------------------- #
# Dependency-graph checker (Appendix B)
# --------------------------------------------------------------------------- #
def test_dependency_graph_accepts_correct_write_order():
    w1 = op("a", "write", 1, "ack", 0, 1, op_id=1)
    w2 = op("b", "write", 2, "ack", 2, 3, op_id=2)
    r1 = op("c", "read", None, 2, 4, 5, op_id=3)
    checker = DependencyGraphChecker(history(w1, w2, r1), initial_value=0)
    assert checker.check([w1, w2])
    assert checker.check_with_version_order({1: (1, 1), 2: (2, 2)})


def test_dependency_graph_rejects_wrong_write_order():
    w1 = op("a", "write", 1, "ack", 0, 1, op_id=1)
    w2 = op("b", "write", 2, "ack", 2, 3, op_id=2)
    r1 = op("c", "read", None, 2, 4, 5, op_id=3)
    checker = DependencyGraphChecker(history(w1, w2, r1), initial_value=0)
    # Putting w2 before w1 contradicts both real time and the read of 2.
    assert not checker.check([w2, w1])


def test_dependency_graph_requires_distinct_written_values():
    w1 = op("a", "write", 1, "ack", 0, 1, op_id=1)
    w2 = op("b", "write", 1, "ack", 2, 3, op_id=2)
    with pytest.raises(HistoryError):
        DependencyGraphChecker(history(w1, w2))


def test_dependency_graph_rejects_unknown_read_value():
    w1 = op("a", "write", 1, "ack", 0, 1, op_id=1)
    r1 = op("c", "read", None, 7, 4, 5, op_id=2)
    checker = DependencyGraphChecker(history(w1, r1), initial_value=0)
    with pytest.raises(HistoryError):
        checker.check([w1])


def test_dependency_graph_write_order_must_be_permutation():
    w1 = op("a", "write", 1, "ack", 0, 1, op_id=1)
    w2 = op("b", "write", 2, "ack", 2, 3, op_id=2)
    checker = DependencyGraphChecker(history(w1, w2), initial_value=0)
    with pytest.raises(HistoryError):
        checker.check([w1])


def test_dependency_graph_read_of_initial_value_precedes_all_writes():
    w1 = op("a", "write", 1, "ack", 5, 6, op_id=1)
    r0 = op("b", "read", None, 0, 0, 1, op_id=2)
    checker = DependencyGraphChecker(history(w1, r0), initial_value=0)
    assert checker.check([w1])


def test_dependency_graph_agrees_with_wing_gong_on_valid_history():
    w1 = op("a", "write", 1, "ack", 0, 2, op_id=1)
    w2 = op("b", "write", 2, "ack", 1, 3, op_id=2)
    r1 = op("c", "read", None, 1, 4, 5, op_id=3)
    h = history(w1, w2, r1)
    wing_gong = check_register_linearizability(h, initial_value=0)
    assert wing_gong.is_linearizable
    checker = DependencyGraphChecker(h, initial_value=0)
    # The read of 1 after both writes completes forces w2 before w1.
    assert checker.check([w2, w1])
    assert not checker.check([w1, w2])
