"""Tests for the MWMR atomic register (Figure 4) and the classical ABD baseline."""

import pytest

from repro.checkers import check_register_linearizability
from repro.experiments import run_register_workload
from repro.history import History
from repro.protocols import (
    classical_register_factory,
    gqs_register_factory,
)
from repro.protocols.register import RegisterState, initial_register_state
from repro.quorums import GeneralizedQuorumSystem
from repro.sim import Cluster, UniformDelay
from repro.types import sorted_processes


def make_cluster(quorum_system, classical=False, seed=0):
    factory = (
        classical_register_factory(quorum_system)
        if classical
        else gqs_register_factory(quorum_system)
    )
    return Cluster(
        sorted_processes(quorum_system.processes), factory, UniformDelay(seed=seed)
    )


def test_initial_register_state():
    state = initial_register_state()
    assert state.value == 0
    assert state.version == (0, 0)
    assert "RegisterState" in repr(state)


def test_read_before_any_write_returns_initial_value(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    handle = cluster.invoke("a", "read")
    cluster.run_until_done([handle], max_time=300.0, require_completion=True)
    assert handle.result == 0


def test_write_then_read_same_process(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    write = cluster.invoke("a", "write", "hello")
    cluster.run_until_done([write], max_time=300.0, require_completion=True)
    assert write.result == "ack"
    read = cluster.invoke("a", "read")
    cluster.run_until_done([read], max_time=300.0, require_completion=True)
    assert read.result == "hello"


def test_write_then_read_across_processes(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    write = cluster.invoke("a", "write", "x")
    cluster.run_until_done([write], max_time=300.0, require_completion=True)
    read = cluster.invoke("c", "read")
    cluster.run_until_done([read], max_time=300.0, require_completion=True)
    assert read.result == "x"


def test_later_write_wins(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    first = cluster.invoke("a", "write", "first")
    cluster.run_until_done([first], max_time=300.0, require_completion=True)
    second = cluster.invoke("b", "write", "second")
    cluster.run_until_done([second], max_time=300.0, require_completion=True)
    read = cluster.invoke("d", "read")
    cluster.run_until_done([read], max_time=300.0, require_completion=True)
    assert read.result == "second"


def test_register_versions_grow_monotonically(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    writes = []
    for value in ("v1", "v2", "v3"):
        handle = cluster.invoke("a", "write", value)
        cluster.run_until_done([handle], max_time=300.0, require_completion=True)
        writes.append(cluster.processes["a"].state.version)
    assert writes == sorted(writes)
    assert len(set(writes)) == 3


def test_concurrent_writes_and_reads_linearizable(figure1_gqs):
    result = run_register_workload(figure1_gqs, pattern=None, ops_per_process=2, seed=11)
    assert result.completed
    outcome = check_register_linearizability(result.history, initial_value=0)
    assert bool(outcome)


def test_register_liveness_and_safety_under_every_figure1_pattern(figure1_gqs):
    for index, pattern in enumerate(figure1_gqs.fail_prone.patterns):
        result = run_register_workload(
            figure1_gqs, pattern=pattern, ops_per_process=2, seed=20 + index
        )
        assert result.completed, "operations inside U_f must terminate under {}".format(
            pattern.name
        )
        assert bool(check_register_linearizability(result.history, initial_value=0))


def test_register_write_read_inside_component_under_f1(figure1_gqs):
    """Concrete Example 10 scenario: operations at a and b terminate under f1."""
    f1 = figure1_gqs.fail_prone.patterns[0]
    cluster = make_cluster(figure1_gqs, seed=3)
    cluster.apply_failure_pattern(f1)
    write = cluster.invoke("a", "write", "from-a")
    cluster.run_until_done([write], max_time=600.0, require_completion=True)
    read = cluster.invoke("b", "read")
    cluster.run_until_done([read], max_time=600.0, require_completion=True)
    assert read.result == "from-a"


def test_classical_abd_register_basic(threshold_3_1):
    gqs = GeneralizedQuorumSystem.from_classical(threshold_3_1)
    cluster = make_cluster(gqs, classical=True)
    write = cluster.invoke("a", "write", 42)
    cluster.run_until_done([write], max_time=200.0, require_completion=True)
    read = cluster.invoke("b", "read")
    cluster.run_until_done([read], max_time=200.0, require_completion=True)
    assert read.result == 42


def test_classical_abd_workload_linearizable(threshold_3_1):
    gqs = GeneralizedQuorumSystem.from_classical(threshold_3_1)
    result = run_register_workload(gqs, pattern=None, ops_per_process=2, classical=True, seed=5)
    assert result.completed
    assert bool(check_register_linearizability(result.history, initial_value=0))


def test_writer_ranks_are_unique(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    ranks = [process.writer_rank for process in cluster.processes.values()]
    assert len(set(ranks)) == len(ranks)


def test_register_history_records_invocations(figure1_gqs):
    result = run_register_workload(figure1_gqs, pattern=None, ops_per_process=2, seed=13)
    history: History = result.history
    kinds = {record.kind for record in history}
    assert kinds == {"read", "write"}
    assert result.metrics.operations == len(history)
    assert result.metrics.completed == len(history.complete_records())
    assert result.metrics.messages_sent > 0
