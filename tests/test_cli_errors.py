"""CLI error paths: unknown names exit non-zero with stable golden messages.

Every unknown-name error now funnels through the extension registry, so the
messages are deterministic (sorted candidate lists, hash-seed independent)
and carry a "did you mean" suggestion on a close miss — asserted here as
exact golden text.
"""

import pytest

from repro.cli import main

ALL_SCENARIOS = (
    "['adversarial-partition', 'churn-at-gst', 'geo-replication', "
    "'heavy-contention-register', 'lattice-fan-in', 'multi-region-blackout', "
    "'partial-synchrony-stress', 'paxos-baseline', 'unidirectional-ring', "
    "'zoned-threshold']"
)

BUILTIN_FORMS = (
    "figure1, figure1-modified, ring-<n>, geo-<sites>x<replicas>, minority-<n>, "
    "adversarial-<n>, large-threshold-<n>x<k>[x<zones>] or "
    "multiregion-<regions>x<replicas>"
)


def test_unknown_scenario_name_golden_message(capsys):
    status = main(["scenario", "run", "zoned-treshold"])
    captured = capsys.readouterr()
    assert status == 1
    assert captured.err == (
        "error: unknown scenario 'zoned-treshold'; expected one of "
        + ALL_SCENARIOS
        + " (did you mean 'zoned-threshold'?)\n"
    )


def test_unknown_scenario_without_close_match_has_no_suggestion(capsys):
    status = main(["scenario", "show", "qqqq"])
    captured = capsys.readouterr()
    assert status == 1
    assert captured.err == (
        "error: unknown scenario 'qqqq'; expected one of " + ALL_SCENARIOS + "\n"
    )


def test_unknown_builtin_topology_golden_message(capsys):
    status = main(["check", "--builtin", "doesnt-exist"])
    captured = capsys.readouterr()
    assert status == 1
    assert captured.err == (
        "error: unknown built-in system 'doesnt-exist'; use " + BUILTIN_FORMS + "\n"
    )


def test_unknown_protocol_object_rejected_by_generated_choices(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["simulate", "--object", "registr"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice: 'registr'" in err
    # The choice list is generated from the protocol registry.
    for kind in ("register", "snapshot", "lattice", "consensus", "paxos"):
        assert kind in err


def test_unknown_checker_rejected_by_generated_choices(capsys, tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["check", str(tmp_path), "--checker", "wing-gog"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice: 'wing-gog'" in err
    for kind in ("auto", "wing-gong", "dep-graph", "streaming"):
        assert kind in err


def test_unknown_plugin_module_golden_message(capsys):
    status = main(["--plugin", "no_such_plugin_module", "examples"])
    captured = capsys.readouterr()
    assert status == 1
    assert captured.err.startswith(
        "error: plugin 'no_such_plugin_module' failed to import: ModuleNotFoundError:"
    )
