"""Tests for the JSON (de)serialization helpers."""

import json

import pytest

from repro.errors import ReproError
from repro.serialization import (
    fail_prone_system_from_dict,
    fail_prone_system_to_dict,
    failure_pattern_from_dict,
    failure_pattern_to_dict,
    load_fail_prone_system,
    load_quorum_system,
    quorum_system_from_dict,
    quorum_system_to_dict,
    save_fail_prone_system,
    save_quorum_system,
)
from repro.failures import FailurePattern
from repro.quorums import gqs_exists


def test_failure_pattern_round_trip():
    pattern = FailurePattern(["d"], [("a", "c"), ("b", "c")], name="f1")
    data = failure_pattern_to_dict(pattern)
    assert data["crash"] == ["d"]
    assert ["a", "c"] in data["disconnect"]
    restored = failure_pattern_from_dict(data)
    assert restored == pattern
    assert restored.name == "f1"


def test_failure_pattern_from_bad_payload():
    with pytest.raises(ReproError):
        failure_pattern_from_dict(["not", "a", "dict"])


def test_fail_prone_system_round_trip(figure1_system):
    data = fail_prone_system_to_dict(figure1_system)
    restored = fail_prone_system_from_dict(data)
    assert restored.processes == figure1_system.processes
    assert restored.patterns == figure1_system.patterns
    assert gqs_exists(restored)


def test_fail_prone_system_requires_processes():
    with pytest.raises(ReproError):
        fail_prone_system_from_dict({"patterns": []})
    with pytest.raises(ReproError):
        fail_prone_system_from_dict("not a dict")


def test_fail_prone_system_defaults_to_failure_free_pattern():
    system = fail_prone_system_from_dict({"processes": ["a", "b"]})
    assert len(system) == 1
    assert not system.patterns[0].crash_prone


def test_quorum_system_round_trip(figure1_gqs):
    data = quorum_system_to_dict(figure1_gqs)
    restored = quorum_system_from_dict(data)
    assert restored.is_valid()
    assert set(restored.read_quorums) == set(figure1_gqs.read_quorums)
    assert set(restored.write_quorums) == set(figure1_gqs.write_quorums)


def test_quorum_system_from_dict_missing_keys():
    with pytest.raises(ReproError):
        quorum_system_from_dict({"read_quorums": []})
    with pytest.raises(ReproError):
        quorum_system_from_dict([1, 2, 3])


def test_json_file_round_trip(tmp_path, figure1_system, figure1_gqs):
    system_path = str(tmp_path / "system.json")
    quorums_path = str(tmp_path / "quorums.json")
    save_fail_prone_system(figure1_system, system_path)
    save_quorum_system(figure1_gqs, quorums_path)

    # Files are valid JSON.
    with open(system_path) as handle:
        json.load(handle)
    with open(quorums_path) as handle:
        json.load(handle)

    restored_system = load_fail_prone_system(system_path)
    restored_quorums = load_quorum_system(quorums_path)
    assert restored_system.patterns == figure1_system.patterns
    assert restored_quorums.is_valid()
