"""Tests for the analysis helpers: Figure 1 objects, worked examples, metrics."""

import pytest

from repro.analysis import (
    FIGURE1_PROCESSES,
    OperationMetrics,
    ResultTable,
    figure1_fail_prone_system,
    figure1_modified_fail_prone_system,
    figure1_patterns,
    figure1_quorum_system,
    figure1_read_quorums,
    figure1_termination_components,
    figure1_write_quorums,
    mean,
    percentile,
    run_all_examples,
)
from repro.quorums import gqs_exists


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
def test_figure1_patterns_have_expected_shape():
    patterns = figure1_patterns()
    assert len(patterns) == 4
    assert [f.name for f in patterns] == ["f1", "f2", "f3", "f4"]
    for pattern in patterns:
        assert len(pattern.crash_prone) == 1
        assert len(pattern.disconnect_prone) == 3


def test_figure1_f1_details():
    f1 = figure1_patterns()[0]
    assert f1.crash_prone == frozenset({"d"})
    # Correct channels under f1 are (c,a), (a,b), (b,a); the other
    # survivor-to-survivor channels may disconnect.
    assert f1.disconnect_prone == frozenset({("a", "c"), ("b", "c"), ("c", "b")})


def test_figure1_quorums_match_paper():
    reads = figure1_read_quorums()
    writes = figure1_write_quorums()
    assert frozenset({"a", "c"}) in reads
    assert frozenset({"b", "d"}) in reads
    assert writes == [
        frozenset({"a", "b"}),
        frozenset({"b", "c"}),
        frozenset({"c", "d"}),
        frozenset({"d", "a"}),
    ]


def test_figure1_quorum_system_valid_and_components():
    gqs = figure1_quorum_system()
    assert gqs.is_valid()
    components = figure1_termination_components()
    assert components["f1"] == frozenset({"a", "b"})
    assert components["f3"] == frozenset({"c", "d"})


def test_figure1_modified_system_admits_no_gqs():
    assert gqs_exists(figure1_fail_prone_system())
    assert not gqs_exists(figure1_modified_fail_prone_system())


def test_figure1_modified_only_changes_f1():
    modified = figure1_modified_fail_prone_system()
    names = [f.name for f in modified]
    assert names[0] == "f1'"
    assert ("a", "b") in modified.patterns[0].disconnect_prone
    assert names[1:] == ["f2", "f3", "f4"]


def test_figure1_process_constant():
    assert FIGURE1_PROCESSES == ("a", "b", "c", "d")


# --------------------------------------------------------------------------- #
# Worked examples
# --------------------------------------------------------------------------- #
def test_all_worked_examples_hold():
    outcomes = run_all_examples()
    assert len(outcomes) == 6
    for outcome in outcomes:
        assert outcome.holds, "{} failed: {}".format(outcome.example, outcome.details)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_result_table_formatting():
    table = ResultTable(title="demo", columns=["x", "value"])
    table.add_row(x=1, value=0.5)
    table.add_row(x=2, value=1.0)
    text = table.to_text()
    assert "demo" in text
    assert "0.500" in text
    assert table.column("x") == [1, 2]


def test_result_table_missing_column_rejected():
    table = ResultTable(title="demo", columns=["x", "y"])
    with pytest.raises(ValueError):
        table.add_row(x=1)


def test_mean_and_percentile():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert percentile([], 0.5) == 0.0
    assert percentile([1, 2, 3, 4], 0.5) == 2
    assert percentile([1, 2, 3, 4], 1.0) == 4
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_operation_metrics_ratios():
    metrics = OperationMetrics(operations=4, completed=2, messages_sent=20)
    assert metrics.completion_ratio == 0.5
    assert metrics.messages_per_operation() == 10.0
    empty = OperationMetrics()
    assert empty.completion_ratio == 0.0
