"""Determinism of the nemesis hunt: jobs-independence and hash-seed freedom.

The hunt's contract is that ``(scenario, strategy, budget, seeds, batch,
seed)`` fully determine the report and the persisted corpus — worker count
must only change wall-clock time, and nothing may leak Python's per-process
hash randomization into the output.  These tests compare complete artifacts
byte for byte: corpus files across ``jobs`` ∈ {serial, 2, 4} in process, and
CLI JSON output across two ``PYTHONHASHSEED`` values in subprocesses
(the idiom of ``test_discovery_determinism.py``).
"""

from __future__ import annotations

import os
import subprocess
import sys

import repro
from repro import api

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SCENARIO = "unidirectional-ring"
BUDGET = 6
ROOT_SEED = 3


def _corpus_bytes(directory):
    """Every corpus file's (name, bytes), sorted — the whole observable state."""
    return [
        (name, open(os.path.join(directory, name), "rb").read())
        for name in sorted(os.listdir(directory))
    ]


def _hunt(directory, jobs):
    report = api.hunt(
        SCENARIO,
        strategy="coverage-guided",
        budget=BUDGET,
        seed=ROOT_SEED,
        corpus_dir=directory,
        jobs=jobs,
    )
    return report.to_json(), _corpus_bytes(directory)


def test_hunt_is_jobs_independent(tmp_path):
    """Same seed and budget ⇒ byte-identical report and corpus for any jobs."""
    serial_json, serial_files = _hunt(str(tmp_path / "serial"), jobs=1)
    for jobs in (2, 4):
        json_n, files_n = _hunt(str(tmp_path / "jobs{}".format(jobs)), jobs=jobs)
        assert json_n == serial_json
        assert [name for name, _ in files_n] == [name for name, _ in serial_files]
        assert files_n == serial_files
    assert serial_files  # survivors actually got persisted


def test_strategies_diverge_but_each_is_deterministic(tmp_path):
    """Different strategies are allowed to differ; reruns of one are not."""
    reports = {
        strategy: api.hunt(SCENARIO, strategy=strategy, budget=BUDGET, seed=ROOT_SEED)
        for strategy in ("random", "hill-climb", "coverage-guided")
    }
    for strategy, report in reports.items():
        again = api.hunt(SCENARIO, strategy=strategy, budget=BUDGET, seed=ROOT_SEED)
        assert report.to_json() == again.to_json()


def _run_under_hash_seed(hash_seed: str, argv) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
    )
    assert completed.returncode == 0, completed.stderr.decode()
    return completed.stdout


def test_cli_hunt_json_is_hash_seed_independent():
    """The CLI hunt under two hash seeds: byte-identical JSON reports."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "nemesis",
        "hunt",
        SCENARIO,
        "--budget",
        str(BUDGET),
        "--seed",
        str(ROOT_SEED),
        "--jobs",
        "2",
        "--format",
        "json",
    ]
    out_a = _run_under_hash_seed("0", argv)
    out_b = _run_under_hash_seed("4242", argv)
    assert out_a == out_b
    assert b'"best_score"' in out_a
