"""Tests for the lattice agreement and consensus property checkers."""

import pytest

from repro.checkers import check_consensus, check_lattice_agreement
from repro.errors import HistoryError
from repro.history import History, OperationRecord
from repro.protocols import MaxLattice, SetLattice


def propose(pid, value, result, start=0.0, end=1.0):
    return OperationRecord(pid, "propose", value, result, start, end)


def pending_propose(pid, value, start=0.0):
    return OperationRecord(pid, "propose", value, None, start, None)


# --------------------------------------------------------------------------- #
# Lattice agreement
# --------------------------------------------------------------------------- #
def test_lattice_empty_history_ok():
    assert check_lattice_agreement(History()).ok


def test_lattice_valid_outputs():
    h = History(
        [
            propose("a", frozenset("a"), frozenset("ab")),
            propose("b", frozenset("b"), frozenset("ab")),
        ]
    )
    result = check_lattice_agreement(h)
    assert result.ok and not result.violations


def test_lattice_comparability_violation():
    h = History(
        [
            propose("a", frozenset("a"), frozenset("a")),
            propose("b", frozenset("b"), frozenset("b")),
        ]
    )
    result = check_lattice_agreement(h)
    assert not result.comparability
    assert not result.ok
    assert any("comparability" in v for v in result.violations)


def test_lattice_downward_validity_violation():
    h = History([propose("a", frozenset("a"), frozenset("b"))])
    result = check_lattice_agreement(h)
    assert not result.downward_validity


def test_lattice_upward_validity_violation():
    h = History([propose("a", frozenset("a"), frozenset("az"))])
    result = check_lattice_agreement(h)
    assert not result.upward_validity


def test_lattice_incomplete_proposals_count_as_inputs():
    # b's proposal never returned, but its input may legitimately appear in outputs.
    h = History(
        [
            propose("a", frozenset("a"), frozenset("ab")),
            pending_propose("b", frozenset("b")),
        ]
    )
    assert check_lattice_agreement(h).ok


def test_lattice_custom_lattice():
    h = History([propose("a", 3, 5), propose("b", 5, 5)])
    assert check_lattice_agreement(h, lattice=MaxLattice()).ok
    bad = History([propose("a", 3, 2)])
    assert not check_lattice_agreement(bad, lattice=MaxLattice()).downward_validity


def test_lattice_rejects_foreign_operations():
    h = History([OperationRecord("a", "read", None, None, 0, 1)])
    with pytest.raises(HistoryError):
        check_lattice_agreement(h)


# --------------------------------------------------------------------------- #
# Consensus
# --------------------------------------------------------------------------- #
def test_consensus_agreement_and_validity_hold():
    h = History([propose("a", "x", "x"), propose("b", "y", "x")])
    result = check_consensus(h)
    assert result.ok
    assert result.decided_values == ["x", "x"]


def test_consensus_agreement_violation():
    h = History([propose("a", "x", "x"), propose("b", "y", "y")])
    result = check_consensus(h)
    assert not result.agreement
    assert not result.ok


def test_consensus_validity_violation():
    h = History([propose("a", "x", "z")])
    result = check_consensus(h)
    assert not result.validity


def test_consensus_termination_check():
    h = History([propose("a", "x", "x"), pending_propose("b", "y")])
    ok_without = check_consensus(h)
    assert ok_without.termination  # not requested
    failed = check_consensus(h, required_to_terminate={"a", "b"})
    assert not failed.termination
    assert failed.non_terminated == ["b"]
    passed = check_consensus(h, required_to_terminate={"a"})
    assert passed.termination


def test_consensus_termination_only_counts_invoking_processes():
    h = History([propose("a", "x", "x")])
    result = check_consensus(h, required_to_terminate={"a", "b", "c"})
    assert result.termination


def test_consensus_rejects_foreign_operations():
    h = History([OperationRecord("a", "write", 1, "ack", 0, 1)])
    with pytest.raises(HistoryError):
        check_consensus(h)
