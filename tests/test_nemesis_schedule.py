"""Unit coverage of the nemesis building blocks.

The pieces under test: the ``schedule-override`` delay wrapper (the sim-layer
hook mutated schedules replay through), the :class:`~repro.nemesis.Schedule`
search points and their serialization, the deterministic mutation operators,
the fitness composite, and the three built-in search strategies' parent
selection and survival rules.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.nemesis import (
    MUTATION_OPERATORS,
    Schedule,
    build_strategy,
    fitness_of,
    identity_schedule,
    load_schedule,
    mutate_schedule,
    save_schedule,
)
from repro.nemesis.mutate import MAX_STRETCH
from repro.nemesis.schedule import STALL_WEIGHT, VIOLATION_WEIGHT
from repro.nemesis.strategies import Evaluation, HuntState
from repro.registry import NEMESIS
from repro.scenarios import get_scenario
from repro.scenarios.builders import build_topology
from repro.sim import FixedDelay, ScheduleOverride, build_delay_model
from repro.sim.override import (
    nudges_from_lists,
    nudges_to_lists,
    stretches_from_lists,
    stretches_to_lists,
)


# ---------------------------------------------------------------------- #
# ScheduleOverride: the sim-layer replay hook
# ---------------------------------------------------------------------- #
def test_override_identity_replays_base_model_exactly():
    base = FixedDelay(2.0)
    override = ScheduleOverride(base)
    assert override.delay(("a", "b"), 0.0) == 2.0
    assert override.delay(("b", "a"), 1.0) == 2.0


def test_override_stretch_multiplies_one_channel_only():
    override = ScheduleOverride(FixedDelay(2.0), stretches={("a", "b"): 4.0})
    assert override.delay(("a", "b"), 0.0) == 8.0
    assert override.delay(("b", "a"), 0.0) == 2.0  # other direction untouched


def test_override_nudge_hits_exactly_the_indexed_message():
    override = ScheduleOverride(FixedDelay(1.0), nudges={(("a", "b"), 1): 5.0})
    assert override.delay(("a", "b"), 0.0) == 1.0  # send index 0
    assert override.delay(("a", "b"), 0.0) == 6.0  # send index 1: nudged
    assert override.delay(("a", "b"), 0.0) == 1.0  # send index 2


def test_override_reset_restarts_send_counters_and_base_rng():
    base = build_delay_model("uniform", {"min_delay": 0.5, "max_delay": 2.0}, seed=9)
    override = ScheduleOverride(base, nudges={(("a", "b"), 0): 3.0})
    first = [override.delay(("a", "b"), 0.0) for _ in range(3)]
    override.reset()
    second = [override.delay(("a", "b"), 0.0) for _ in range(3)]
    assert first == second  # replay: same draws, same nudge application


def test_override_preserves_base_draw_sequence():
    """The base RNG consumes identical draws with and without perturbations."""
    plain = build_delay_model("uniform", {}, seed=5)
    wrapped_base = build_delay_model("uniform", {}, seed=5)
    override = ScheduleOverride(wrapped_base, stretches={("a", "b"): 2.0})
    raw = [plain.delay(("a", "b"), 0.0) for _ in range(4)]
    perturbed = [override.delay(("a", "b"), 0.0) for _ in range(4)]
    assert perturbed == [2.0 * value for value in raw]


def test_override_rejects_negative_stretch():
    with pytest.raises(ReproError):
        ScheduleOverride(FixedDelay(1.0), stretches={("a", "b"): -1.0})


def test_override_list_encodings_round_trip_with_types():
    stretches = {("p0", "p1"): 2.0, ("p1", "p0"): 0.5}
    nudges = {(("p0", "p1"), 3): 4.0}
    assert stretches_from_lists(stretches_to_lists(stretches)) == stretches
    assert nudges_from_lists(nudges_to_lists(nudges)) == nudges


def test_override_registered_as_delay_model_kind():
    model = build_delay_model(
        "schedule-override",
        {
            "base": {"kind": "fixed", "params": {"latency": 3.0}},
            "stretches": [["a", "b", 2.0]],
            "nudges": [],
        },
        seed=0,
    )
    assert model.delay(("a", "b"), 0.0) == 6.0
    assert model.delay(("b", "c"), 0.0) == 3.0


# ---------------------------------------------------------------------- #
# Schedule: search points and serialization
# ---------------------------------------------------------------------- #
def test_identity_schedule_keeps_base_delay_spec():
    spec = get_scenario("unidirectional-ring")
    schedule = identity_schedule(spec, seed=42)
    derived = schedule.derived_spec()
    assert derived.delay == spec.delay  # unperturbed: no override wrapper
    assert derived.name == "nemesis-unidirectional-ring"
    assert derived.default_runs == 1


def test_perturbed_schedule_wraps_base_delay_in_override():
    spec = get_scenario("unidirectional-ring")
    schedule = Schedule(base=spec, seed=1, stretches=(("p0", "p1", 2.0),))
    derived = schedule.derived_spec()
    assert derived.delay.kind == "schedule-override"
    assert derived.delay.params["base"] == spec.delay.to_dict()
    assert derived.delay.params["stretches"] == [["p0", "p1", 2.0]]


def test_schedule_save_load_round_trip(tmp_path):
    spec = get_scenario("unidirectional-ring")
    schedule = Schedule(
        base=spec,
        seed=7,
        pattern="f1",
        inject_at=4.0,
        stretches=(("p0", "p1", 2.0),),
        nudges=(("p1", "p2", 3, 1.5),),
        lineage=("stretch p0->p1 x2", "nudge p1->p2#3 +1.5"),
    )
    path = str(tmp_path / "one.schedule.json")
    save_schedule(schedule, path)
    assert load_schedule(path) == schedule


def test_schedule_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.schedule.json"
    path.write_text('{"schema": 999, "base": {}}')
    with pytest.raises(ReproError):
        load_schedule(str(path))


# ---------------------------------------------------------------------- #
# Mutation operators
# ---------------------------------------------------------------------- #
def _ring_schedule():
    spec = get_scenario("unidirectional-ring")
    return spec, identity_schedule(spec, seed=0), build_topology(spec)


def test_mutation_is_a_pure_function_of_parent_and_seed():
    spec, schedule, system = _ring_schedule()
    processes = system.processes
    declared = tuple(system.patterns)
    children = [mutate_schedule(schedule, processes, declared, seed=s) for s in range(24)]
    again = [mutate_schedule(schedule, processes, declared, seed=s) for s in range(24)]
    assert children == again


def test_mutation_appends_exactly_one_lineage_tag():
    spec, schedule, system = _ring_schedule()
    for seed in range(24):
        child = mutate_schedule(schedule, system.processes, tuple(system.patterns), seed)
        assert len(child.lineage) == len(schedule.lineage) + 1
        assert child.base is schedule.base
        assert child.seed == schedule.seed


def test_mutation_operators_cover_the_documented_set():
    spec, schedule, system = _ring_schedule()
    declared = tuple(system.patterns)
    prefixes = set()
    for seed in range(64):
        child = mutate_schedule(schedule, system.processes, declared, seed)
        prefixes.add(child.lineage[-1].split(" ")[0])
    # The identity ring schedule injects a pattern, so all four operators
    # (stretch/nudge/inject/pattern) are available and a modest seed sweep
    # exercises each.
    assert prefixes == {"stretch", "nudge", "inject", "pattern"}
    assert len(MUTATION_OPERATORS) == 4


def test_swapped_patterns_stay_inside_the_declared_system():
    spec, schedule, system = _ring_schedule()
    declared = tuple(system.patterns)
    names = {pattern.name for pattern in declared} | {None}
    for seed in range(64):
        child = mutate_schedule(schedule, system.processes, declared, seed)
        assert child.pattern in names


def test_stretch_factors_are_clamped():
    spec, schedule, system = _ring_schedule()
    declared = tuple(system.patterns)
    current = schedule
    rng = random.Random(0)
    for _ in range(200):
        current = mutate_schedule(current, system.processes, declared, rng.randrange(1 << 30))
    for _, _, factor in current.stretches:
        assert 1.0 / MAX_STRETCH <= factor <= MAX_STRETCH


# ---------------------------------------------------------------------- #
# Fitness
# ---------------------------------------------------------------------- #
def _row(completed=True, safe=True, explored=10):
    return {"completed": completed, "safe": safe, "explored_states": explored}


def test_fitness_is_lexicographic_violation_over_stall_over_explored():
    plain = fitness_of(_row(), within_budget=True)
    stall = fitness_of(_row(completed=False), within_budget=True)
    violation = fitness_of(_row(safe=False), within_budget=True)
    assert plain["score"] == 10
    assert stall["score"] == 10 + STALL_WEIGHT
    assert violation["score"] == 10 + VIOLATION_WEIGHT
    assert violation["score"] > stall["score"] > plain["score"]


def test_out_of_budget_unsafe_run_scores_as_ordinary():
    fitness = fitness_of(_row(safe=False), within_budget=False)
    assert fitness["violation"] is False
    assert fitness["score"] == 10


def test_effort_override_replaces_the_explored_component():
    fitness = fitness_of(_row(explored=10), within_budget=True, effort=500)
    assert fitness["explored_states"] == 500
    assert fitness["score"] == 500


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
def _evaluation(candidate, score, explored=None):
    explored = score if explored is None else explored
    return Evaluation(
        candidate=candidate,
        schedule=None,
        row={},
        fitness={
            "score": score,
            "explored_states": explored,
            "stalled": False,
            "violation": False,
        },
        within_budget=True,
        budget_witness=None,
    )


def test_nemesis_registry_has_the_three_builtin_strategies():
    assert set(NEMESIS.names()) >= {"random", "hill-climb", "coverage-guided"}


def test_random_strategy_parents_are_always_seeds():
    strategy = build_strategy("random")
    state = HuntState()
    state.add_seed(_evaluation(0, 5))
    state.add_seed(_evaluation(1, 7))
    state.observe(_evaluation(2, 9), admitted=True)  # an admitted mutant
    rng = random.Random(3)
    for _ in range(20):
        assert strategy.select_parent(state, rng).candidate in (0, 1)


def test_hill_climb_parent_is_the_incumbent_best():
    strategy = build_strategy("hill-climb")
    state = HuntState()
    state.add_seed(_evaluation(0, 5))
    state.observe(_evaluation(1, 9), admitted=True)
    assert strategy.select_parent(state, random.Random(0)).candidate == 1
    # Strict improvement only: a tie is not admitted.
    assert strategy.admit(state, _evaluation(2, 9)) is False
    assert strategy.admit(state, _evaluation(2, 10)) is True


def test_coverage_guided_admits_new_signature_buckets():
    strategy = build_strategy("coverage-guided")
    state = HuntState()
    state.add_seed(_evaluation(0, 5))
    # Same bucket, lower score: rejected.
    assert strategy.admit(state, _evaluation(1, 4, explored=4)) is False
    # New explored-states band (different bucket): admitted despite the score.
    assert strategy.admit(state, _evaluation(1, 30, explored=30)) is True


def test_unknown_strategy_gets_a_rich_error():
    with pytest.raises(ReproError):
        build_strategy("gradient-descent")
