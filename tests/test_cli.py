"""Tests for the command-line interface (:mod:`repro.cli`)."""

import json

import pytest

from repro.cli import main


def test_check_builtin_figure1(capsys):
    status = main(["check", "--builtin", "figure1"])
    output = capsys.readouterr().out
    assert status == 0
    assert "generalized quorum system exists" in output
    assert "U_f" in output


def test_check_builtin_modified_reports_impossibility(capsys):
    status = main(["check", "--builtin", "figure1-modified"])
    output = capsys.readouterr().out
    assert status == 2
    assert "NO generalized quorum system" in output


def test_check_unknown_builtin(capsys):
    status = main(["check", "--builtin", "does-not-exist"])
    captured = capsys.readouterr()
    assert status == 1
    assert "unknown built-in" in captured.err


def test_check_spec_file(tmp_path, capsys):
    spec = {
        "processes": ["a", "b", "c"],
        "patterns": [
            {"name": "partition", "crash": [], "disconnect": [["a", "c"], ["b", "c"], ["c", "b"]]},
            {"name": "crash-b", "crash": ["b"], "disconnect": []},
        ],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    status = main(["check", "--spec", str(path)])
    assert status == 0
    assert "generalized quorum system exists" in capsys.readouterr().out


def test_simulate_register_under_f1(capsys):
    status = main(
        ["simulate", "--builtin", "figure1", "--object", "register", "--pattern", "f1", "--ops", "1"]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "linearizable=True" in output
    assert "all ops completed : True" in output


def test_simulate_consensus_failure_free(capsys):
    status = main(["simulate", "--builtin", "figure1", "--object", "consensus"])
    output = capsys.readouterr().out
    assert status == 0
    assert "agreement+validity+termination=True" in output


def test_simulate_unknown_pattern(capsys):
    status = main(["simulate", "--builtin", "figure1", "--pattern", "nope"])
    assert status == 1
    assert "unknown pattern" in capsys.readouterr().err


def test_simulate_on_intolerable_system(capsys):
    status = main(["simulate", "--builtin", "figure1-modified"])
    assert status == 2
    assert "nothing to simulate" in capsys.readouterr().out.lower()


def test_examples_command(capsys):
    status = main(["examples"])
    output = capsys.readouterr().out
    assert status == 0
    assert output.count("[ok ]") == 6


def test_sweep_admissibility(capsys):
    status = main(
        ["sweep", "admissibility", "--probs", "0.0", "0.3", "--samples", "5", "--n", "4"]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "generalized (GQS)" in output


def test_sweep_reliability(capsys):
    status = main(["sweep", "reliability", "--probs", "0.0", "--samples", "10"])
    output = capsys.readouterr().out
    assert status == 0
    assert "GQS availability" in output


def test_sweep_jobs_do_not_change_results(capsys):
    argv = ["sweep", "all", "--probs", "0.0", "0.3", "--samples", "8", "--n", "4", "--seed", "7"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_simulate_multiple_runs_aggregate(capsys):
    status = main(
        [
            "simulate", "--builtin", "figure1", "--object", "register",
            "--pattern", "f1", "--ops", "1", "--runs", "3", "--jobs", "2",
        ]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "runs              : 3" in output
    assert "linearizable=True (3/3 runs)" in output
    assert "all ops completed : True (3/3 runs)" in output


def test_check_with_repair_suggestions(capsys):
    status = main(
        ["check", "--builtin", "figure1-modified", "--suggest-repairs", "--max-repair-channels", "1"]
    )
    output = capsys.readouterr().out
    assert status == 2
    assert "Hardening any of the following channel sets" in output
    assert "('a', 'b')" in output


# ---------------------------------------------------------------------- #
# quorums command group
# ---------------------------------------------------------------------- #
def test_quorums_discover_table(capsys):
    status = main(["quorums", "discover", "--builtin", "figure1"])
    output = capsys.readouterr().out
    assert status == 0
    assert "GQS witness" in output
    assert "nodes explored" in output
    assert "algorithm         : pruned" in output


def test_quorums_discover_json_round_trips(capsys):
    status = main(["quorums", "discover", "--builtin", "multiregion-4x3", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 0
    assert payload["exists"] is True
    assert payload["algorithm"] == "pruned"
    assert payload["nodes_explored"] >= len(payload["patterns"])
    for row in payload["patterns"]:
        assert row["candidates"] >= 1
        assert row["read_quorum"] and row["write_quorum"]
        assert set(row["write_quorum"]) <= set(row["read_quorum"])


def test_quorums_discover_reports_impossibility(capsys):
    status = main(["quorums", "discover", "--builtin", "figure1-modified"])
    output = capsys.readouterr().out
    assert status == 2
    assert "NO generalized quorum system" in output


def test_quorums_discover_naive_algorithm_agrees(capsys):
    assert main(["quorums", "discover", "--builtin", "ring-5", "--format", "json"]) == 0
    pruned = json.loads(capsys.readouterr().out)
    assert (
        main(
            [
                "quorums", "discover", "--builtin", "ring-5",
                "--algorithm", "naive", "--format", "json",
            ]
        )
        == 0
    )
    naive = json.loads(capsys.readouterr().out)
    assert pruned["exists"] == naive["exists"] is True
    assert pruned["patterns"] == naive["patterns"]


def test_quorums_classify_table_and_json(capsys):
    assert main(["quorums", "classify", "--builtin", "minority-5"]) == 0
    output = capsys.readouterr().out
    assert "classical quorum system (Definition 1) : True" in output
    assert main(["quorums", "classify", "--builtin", "figure1", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["admits"] == {"classical": False, "strong": False, "generalized": True}


def test_quorums_repair_finds_figure1_hardenings(capsys):
    status = main(["quorums", "repair", "--builtin", "figure1-modified"])
    output = capsys.readouterr().out
    assert status == 0
    assert "restores a GQS" in output
    assert "('a', 'b')" in output
    assert "cache entries reused" in output


def test_quorums_repair_json_on_tolerable_system(capsys):
    status = main(["quorums", "repair", "--builtin", "figure1", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 0
    assert payload["already_tolerable"] is True
    assert payload["suggestions"] == []
