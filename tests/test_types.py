"""Tests for the basic value types in :mod:`repro.types`."""

from repro.types import (
    all_channels,
    channel_set,
    process_set,
    sort_key,
    sorted_channels,
    sorted_processes,
)


def test_process_set_is_frozen():
    ps = process_set(["a", "b", "a"])
    assert ps == frozenset({"a", "b"})
    assert isinstance(ps, frozenset)


def test_channel_set_normalises_pairs():
    cs = channel_set([["a", "b"], ("b", "c")])
    assert ("a", "b") in cs
    assert ("b", "c") in cs
    assert len(cs) == 2


def test_all_channels_complete_graph():
    cs = all_channels(["a", "b", "c"])
    assert len(cs) == 6
    assert ("a", "a") not in cs
    assert ("a", "b") in cs and ("b", "a") in cs


def test_all_channels_single_process_empty():
    assert all_channels(["a"]) == frozenset()


def test_sorted_processes_deterministic_with_mixed_types():
    mixed = [3, "a", 1, "b"]
    once = sorted_processes(mixed)
    twice = sorted_processes(reversed(mixed))
    assert once == twice
    assert set(once) == set(mixed)


def test_sorted_channels_orders_pairs():
    channels = [("b", "a"), ("a", "b"), ("a", "a")]
    ordered = sorted_channels(channels)
    assert ordered[0] == ("a", "a")
    assert ordered[-1] == ("b", "a")


def test_sort_key_separates_types():
    assert sort_key(1) != sort_key("1")
