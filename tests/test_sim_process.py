"""Tests for process machinery: waits, timers, operations, relaying."""

import pytest

from repro.errors import ProcessCrashedError
from repro.sim import FixedDelay, Network, Process, NOT_READY


class Echo(Process):
    """Replies to every "ping" with a "pong"; collects pongs."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.pongs = []

    def on_message(self, sender, message):
        if message == "ping":
            self.send(sender, "pong")
        elif message == "pong":
            self.pongs.append(sender)

    def await_pongs(self, count):
        def gen():
            yield self.wait_until(lambda: len(self.pongs) >= count, "pongs")
            return list(self.pongs)

        return self.start_operation("await_pongs", count, gen())


def make_cluster(cls=Echo, pids=("a", "b", "c")):
    network = Network(delay_model=FixedDelay(1.0))
    procs = {pid: cls(pid, network) for pid in pids}
    return network, procs


def test_operation_blocks_until_condition_met():
    network, procs = make_cluster()
    handle = procs["a"].await_pongs(2)
    procs["a"].broadcast("ping", include_self=False)
    assert not handle.done
    network.run()
    assert handle.done
    assert sorted(handle.result) == ["b", "c"]
    assert handle.latency == pytest.approx(2.0)


def test_operation_completes_immediately_when_condition_holds():
    network, procs = make_cluster()
    handle = procs["a"].await_pongs(0)
    assert handle.done
    assert handle.result == []


def test_operation_on_crashed_process_raises():
    network, procs = make_cluster()
    network.crash_process("a")
    with pytest.raises(ProcessCrashedError):
        procs["a"].await_pongs(1)


def test_crash_clears_pending_waits():
    network, procs = make_cluster()
    handle = procs["a"].await_pongs(2)
    procs["a"].broadcast("ping", include_self=False)
    network.crash_process("a")
    network.run()
    assert not handle.done
    assert procs["a"].pending_operations() == 0


def test_timer_fires_and_crash_cancels_timers():
    network, procs = make_cluster()
    fired = []
    procs["a"].set_timer(2.0, lambda: fired.append("a"))
    procs["b"].set_timer(2.0, lambda: fired.append("b"))
    network.crash_process("b")
    network.run()
    assert fired == ["a"]


def test_periodic_timer_repeats():
    network, procs = make_cluster()
    ticks = []
    procs["a"].set_periodic(1.0, lambda: ticks.append(network.now))
    network.run(max_time=5.5)
    assert len(ticks) == 5


def test_periodic_rejects_nonpositive_interval():
    network, procs = make_cluster()
    with pytest.raises(Exception):
        procs["a"].set_periodic(0.0, lambda: None)


def test_on_complete_callback():
    network, procs = make_cluster()
    seen = []
    handle = procs["a"].await_pongs(1)
    handle.on_complete(lambda h: seen.append(h.result))
    procs["a"].send("b", "ping")
    network.run()
    assert seen == [["b"]]
    # Callback registered after completion fires immediately.
    late = []
    handle.on_complete(lambda h: late.append(True))
    assert late == [True]


def test_wait_for_returns_probe_value():
    network, procs = make_cluster()
    box = {"value": NOT_READY}

    class Prober(Process):
        def probe_op(self):
            def gen():
                value = yield self.wait_for(lambda: box["value"], "box")
                return value

            return self.start_operation("probe", None, gen())

    prober = Prober("p", network)
    handle = prober.probe_op()
    assert not handle.done
    box["value"] = 42
    # Trigger a re-check by delivering any message.
    network.send("a", "p", "noop")
    network.run()
    assert handle.done
    assert handle.result == 42


def test_operation_generator_must_yield_wait_conditions():
    network, procs = make_cluster()

    class Bad(Process):
        def bad_op(self):
            def gen():
                yield "not-a-wait-condition"

            return self.start_operation("bad", None, gen())

    bad = Bad("x", network)
    with pytest.raises(Exception):
        bad.bad_op()


# --------------------------------------------------------------------------- #
# Relaying
# --------------------------------------------------------------------------- #
class RelayEcho(Echo):
    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.enable_relay()


def test_relay_delivers_over_multi_hop_paths():
    """a -> b and b -> c are the only channels; a relay-broadcast still reaches c."""
    network = Network(delay_model=FixedDelay(1.0))
    procs = {pid: RelayEcho(pid, network) for pid in ("a", "b", "c")}
    # Cut all channels except a->b and b->c.
    for src in "abc":
        for dst in "abc":
            if src != dst and (src, dst) not in (("a", "b"), ("b", "c")):
                network.disconnect_channel((src, dst))
    handle = procs["a"].await_pongs(1)  # nobody can answer a, just exercise waits
    procs["a"].broadcast("ping", include_self=False)
    network.run(max_time=20.0)
    # c received the ping via b even though (a, c) is disconnected.
    assert not handle.done  # pongs cannot flow back to a (one-way connectivity)
    del handle


def test_relay_point_to_point_reaches_destination_only():
    network = Network(delay_model=FixedDelay(1.0))
    procs = {pid: RelayEcho(pid, network) for pid in ("a", "b", "c")}
    for src in "abc":
        for dst in "abc":
            if src != dst and (src, dst) not in (("a", "b"), ("b", "c")):
                network.disconnect_channel((src, dst))
    received = []
    procs["c"].on_message = lambda sender, message: received.append((sender, message))
    procs["a"].send("c", "direct")
    network.run(max_time=20.0)
    assert ("a", "direct") in received
    # b forwarded the envelope but did not treat the payload as addressed to it.
    assert procs["b"].pongs == []


def test_relay_deduplicates_forwards():
    network = Network(delay_model=FixedDelay(1.0))
    procs = {pid: RelayEcho(pid, network) for pid in ("a", "b", "c")}
    procs["a"].broadcast("ping", include_self=False)
    network.run(max_time=50.0)
    # With dedup the number of physical messages is bounded by n^2 per logical
    # message (every process forwards each envelope at most once), here the
    # ping plus two pongs = 3 envelopes -> at most 3 * 9 sends.
    assert network.stats.messages_sent <= 27


def test_non_relaying_process_unwraps_envelopes():
    network = Network(delay_model=FixedDelay(1.0))
    sender = RelayEcho("a", network)
    receiver = Echo("b", network)  # relay disabled
    sender.send("b", "ping")
    network.run(max_time=10.0)
    assert sender.pongs == ["b"]


# --------------------------------------------------------------------------- #
# Timer bookkeeping stays bounded (regression: fired timers used to accumulate)
# --------------------------------------------------------------------------- #
def test_timers_stay_bounded_under_a_long_periodic_run():
    network, procs = make_cluster()
    ticks = []
    procs["a"].set_periodic(1.0, lambda: ticks.append(network.now))
    network.run(max_time=500.5)
    assert len(ticks) == 500
    # One armed timer (the next tick), not one entry per past tick.
    assert len(procs["a"]._timers) <= 2


def test_fired_one_shot_timers_drop_out_of_the_timer_list():
    network, procs = make_cluster()
    fired = []
    for i in range(20):
        procs["a"].set_timer(float(i + 1), lambda i=i: fired.append(i))
    network.run()
    assert fired == list(range(20))
    assert len(procs["a"]._timers) == 0


def test_cancelled_timers_stay_bounded_under_repeated_arm_and_cancel():
    network, procs = make_cluster()
    # 100 rounds of arm-10-cancel-10 used to accumulate 1000 dead entries;
    # the amortized prune keeps the structure bounded by a small constant.
    for _ in range(100):
        events = [procs["a"].set_timer(1_000.0, lambda: None) for _ in range(10)]
        for event in events:
            event.cancel()
    assert len(procs["a"]._timers) <= 40
    network.run(max_time=10.0)


def test_crash_still_cancels_pending_timers_after_periodic_run():
    network, procs = make_cluster()
    ticks = []
    procs["a"].set_periodic(1.0, lambda: ticks.append(network.now))
    network.run(max_time=10.5)
    network.crash_process("a")
    network.run(max_time=50.0)
    assert len(ticks) == 10
    assert len(procs["a"]._timers) == 0
