"""End-to-end plugin loading: a third-party module registers a protocol,
topology, delay model and scenario without touching any core module.

The subject is ``examples/plugins/demo_plugin.py`` — the worked example from
``docs/extending.md``.  All loading happens in subprocesses so the global
registries of this test process stay pristine (the catalogue-consistency
tests elsewhere depend on the built-in registry contents).
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLUGIN_DIR = os.path.join(REPO_ROOT, "examples", "plugins")
SRC_DIR = os.path.join(REPO_ROOT, "src")


def _run(args, **extra_env):
    env = dict(os.environ)
    paths = [SRC_DIR, PLUGIN_DIR]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_plugins_list_reports_contributions_via_flag():
    result = _run(["--plugin", "demo_plugin", "plugins", "list", "--format", "json"])
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert payload == [
        {
            "module": "demo_plugin",
            "contributions": [
                {"kind": "protocol", "name": "chatty-register"},
                {"kind": "topology", "name": "relay-triangle"},
                {"kind": "delay-model", "name": "relay-jitter"},
                {"kind": "scenario", "name": "relay-audit"},
            ],
        }
    ]


def test_plugins_list_via_environment_variable():
    result = _run(["plugins", "list"], REPRO_PLUGINS="demo_plugin")
    assert result.returncode == 0, result.stderr
    assert "demo_plugin" in result.stdout
    assert "chatty-register" in result.stdout


def test_plugins_list_empty_without_plugins():
    result = _run(["plugins", "list"])
    assert result.returncode == 0, result.stderr
    assert result.stdout == (
        "no plugins loaded (use --plugin MODULE or REPRO_PLUGINS=mod1,mod2)\n"
    )


def test_plugin_scenario_runs_end_to_end_with_sharding_and_replay(tmp_path):
    """The acceptance flow: scenario run (jobs-independent), record, check."""
    traces = str(tmp_path / "relay-traces")
    serial = _run(
        ["scenario", "run", "relay-audit", "--seed", "5", "--jobs", "1"],
        REPRO_PLUGINS="demo_plugin",
    )
    assert serial.returncode == 0, serial.stderr
    parallel = _run(
        [
            "--plugin", "demo_plugin",
            "scenario", "run", "relay-audit", "--seed", "5", "--jobs", "2",
            "--record-traces", traces,
        ]
    )
    assert parallel.returncode == 0, parallel.stderr
    assert serial.stdout == parallel.stdout  # engine sharding stays deterministic

    check = _run(["check", traces], REPRO_PLUGINS="demo_plugin")
    assert check.returncode == 0, check.stderr
    assert "chatty-register" in check.stdout
    assert "demo-witness-first" in check.stdout
    assert "match recorded     : True (2/2)" in check.stdout


def test_plugin_topology_and_protocol_in_simulate():
    result = _run(
        [
            "simulate",
            "--builtin", "relay-triangle",
            "--object", "chatty-register",
            "--pattern", "ra-down",
            "--ops", "1",
        ],
        REPRO_PLUGINS="demo_plugin",
    )
    assert result.returncode == 0, result.stderr
    assert "object            : chatty-register" in result.stdout
    assert "linearizable=True" in result.stdout


def test_plugin_scenario_appears_in_catalogue_listing():
    result = _run(["--plugin", "demo_plugin", "scenario", "list"])
    assert result.returncode == 0, result.stderr
    assert "relay-audit" in result.stdout
    # The built-in catalogue is untouched when no plugin is loaded.
    bare = _run(["scenario", "list"])
    assert "relay-audit" not in bare.stdout


def test_unknown_plugin_module_fails_loudly():
    result = _run(["--plugin", "no_such_plugin_module", "plugins", "list"])
    assert result.returncode == 1
    assert result.stderr.startswith(
        "error: plugin 'no_such_plugin_module' failed to import: ModuleNotFoundError:"
    )


def _run_script(script, tmp_path, **extra_env):
    env = dict(os.environ)
    paths = [SRC_DIR, PLUGIN_DIR, str(tmp_path)]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    env.update(extra_env)
    path = tmp_path / "script.py"
    path.write_text(script)
    return subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )


def test_plugins_reach_spawn_started_engine_workers(tmp_path):
    """Spawn workers re-import repro from scratch (macOS/Windows default);
    the pool initializer must re-load REPRO_PLUGINS there."""
    script = """
import multiprocessing


def probe(_):
    from repro.registry import PROTOCOLS
    return "chatty-register" in PROTOCOLS


if __name__ == "__main__":
    import os
    os.environ["REPRO_PLUGINS"] = "demo_plugin"
    from repro.engine import ParallelRunner
    from repro.registry import load_env_plugins
    load_env_plugins()
    runner = ParallelRunner(jobs=2, mp_context=multiprocessing.get_context("spawn"))
    results = runner.map(probe, [1, 2])
    assert runner.last_mode == "parallel", runner.last_mode
    assert results == [True, True], results
    print("SPAWN-OK")
"""
    result = _run_script(script, tmp_path)
    assert result.returncode == 0, result.stderr
    assert "SPAWN-OK" in result.stdout


def test_cli_mirrors_plugin_flag_into_environment(tmp_path):
    """--plugin modules are exported via REPRO_PLUGINS so spawn workers see them."""
    script = """
import os
from repro.cli import main

assert main(["--plugin", "demo_plugin", "plugins", "list"]) == 0
assert os.environ.get("REPRO_PLUGINS") == "demo_plugin", os.environ.get("REPRO_PLUGINS")
print("MIRROR-OK")
"""
    result = _run_script(script, tmp_path)
    assert result.returncode == 0, result.stderr
    assert "MIRROR-OK" in result.stdout


def test_failed_plugin_import_rolls_back_partial_registrations(tmp_path):
    """A plugin that raises after registering must leave no trace behind and
    stay retryable once fixed."""
    (tmp_path / "broken_plugin.py").write_text(
        "from repro.failures import FailProneSystem, FailurePattern\n"
        "from repro.registry import register_topology\n"
        "register_topology('broken-topo', builder=lambda name=None: None)\n"
        "raise RuntimeError('boom after registering')\n"
    )
    script = """
import pytest  # noqa: F401 - not used, keeps import style uniform
from repro.errors import ReproError
from repro.registry import TOPOLOGIES, load_plugin, loaded_plugins

try:
    load_plugin("broken_plugin")
except ReproError as error:
    assert "failed to import" in str(error), error
else:
    raise AssertionError("expected the plugin load to fail")
assert "broken-topo" not in TOPOLOGIES          # rolled back
assert loaded_plugins() == []                   # not recorded as loaded
try:
    load_plugin("broken_plugin")                # retry hits the same clean error,
except ReproError:                              # not "already registered"
    pass
assert "broken-topo" not in TOPOLOGIES
print("ROLLBACK-OK")
"""
    result = _run_script(script, tmp_path)
    assert result.returncode == 0, result.stderr
    assert "ROLLBACK-OK" in result.stdout
