"""Tests for single-shot lattice agreement and its semi-lattice helpers."""

import pytest

from repro.checkers import check_lattice_agreement
from repro.experiments import run_lattice_workload
from repro.protocols import MaxLattice, SetLattice, lattice_agreement_factory
from repro.sim import Cluster, UniformDelay
from repro.types import sorted_processes


# --------------------------------------------------------------------------- #
# Semi-lattices
# --------------------------------------------------------------------------- #
def test_set_lattice_operations():
    lattice = SetLattice()
    assert lattice.bottom() == frozenset()
    assert lattice.join({"a"}, {"b"}) == frozenset({"a", "b"})
    assert lattice.leq({"a"}, {"a", "b"})
    assert not lattice.leq({"a", "b"}, {"a"})
    assert lattice.comparable({"a"}, {"a", "b"})
    assert not lattice.comparable({"a"}, {"b"})
    assert lattice.join_all([{"a"}, {"b"}, {"c"}]) == frozenset("abc")
    assert lattice.join_all([]) == frozenset()


def test_max_lattice_operations():
    lattice = MaxLattice()
    assert lattice.join(3, 5) == 5
    assert lattice.leq(3, 5)
    assert lattice.comparable(3, 5)
    assert lattice.join_all([1, 7, 4]) == 7


# --------------------------------------------------------------------------- #
# Protocol behaviour
# --------------------------------------------------------------------------- #
def make_cluster(quorum_system, seed=0):
    return Cluster(
        sorted_processes(quorum_system.processes),
        lattice_agreement_factory(quorum_system),
        UniformDelay(seed=seed),
    )


def test_single_proposal_returns_itself(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    handle = cluster.invoke("a", "propose", frozenset({"a"}))
    cluster.run_until_done([handle], max_time=600.0, require_completion=True)
    assert handle.result == frozenset({"a"})


def test_outputs_satisfy_lattice_agreement_failure_free(figure1_gqs):
    result = run_lattice_workload(figure1_gqs, pattern=None, seed=1)
    assert result.completed
    check = check_lattice_agreement(result.history)
    assert check.ok, check.violations


def test_outputs_satisfy_lattice_agreement_under_f1(figure1_gqs):
    f1 = figure1_gqs.fail_prone.patterns[0]
    result = run_lattice_workload(figure1_gqs, pattern=f1, seed=2)
    assert result.completed
    check = check_lattice_agreement(result.history)
    assert check.ok, check.violations
    # Under f1 only a and b are required to terminate, and they did.
    assert set(result.extra["invokers"]) == {"a", "b"}


def test_outputs_dominate_inputs(figure1_gqs):
    result = run_lattice_workload(figure1_gqs, pattern=None, seed=3)
    for record in result.history.complete_records():
        assert frozenset(record.argument) <= frozenset(record.result)


def test_outputs_bounded_by_join_of_inputs(figure1_gqs):
    result = run_lattice_workload(figure1_gqs, pattern=None, seed=4)
    all_inputs = frozenset().union(*(frozenset(r.argument) for r in result.history))
    for record in result.history.complete_records():
        assert frozenset(record.result) <= all_inputs


def test_concurrent_proposals_are_comparable(figure1_gqs):
    cluster = make_cluster(figure1_gqs, seed=5)
    handles = [
        cluster.invoke(pid, "propose", frozenset({pid}))
        for pid in sorted_processes(figure1_gqs.processes)
    ]
    cluster.run_until_done(handles, max_time=800.0, require_completion=True)
    outputs = [frozenset(handle.result) for handle in handles]
    for first in outputs:
        for second in outputs:
            assert first <= second or second <= first
