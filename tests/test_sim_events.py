"""Tests for the discrete-event scheduler (:mod:`repro.sim.events`)."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventScheduler


def test_events_run_in_time_order():
    scheduler = EventScheduler()
    order = []
    scheduler.schedule(2.0, lambda: order.append("late"))
    scheduler.schedule(1.0, lambda: order.append("early"))
    scheduler.run()
    assert order == ["early", "late"]
    assert scheduler.now == pytest.approx(2.0)


def test_ties_broken_by_insertion_order():
    scheduler = EventScheduler()
    order = []
    scheduler.schedule(1.0, lambda: order.append("first"))
    scheduler.schedule(1.0, lambda: order.append("second"))
    scheduler.run()
    assert order == ["first", "second"]


def test_negative_delay_rejected():
    scheduler = EventScheduler()
    with pytest.raises(SimulationError):
        scheduler.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    scheduler = EventScheduler()
    scheduler.schedule(5.0, lambda: None)
    scheduler.run()
    with pytest.raises(SimulationError):
        scheduler.schedule_at(1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    scheduler = EventScheduler()
    fired = []
    event = scheduler.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    scheduler.run()
    assert not fired
    assert scheduler.events_processed == 0


def test_events_can_schedule_more_events():
    scheduler = EventScheduler()
    seen = []

    def first():
        seen.append("first")
        scheduler.schedule(1.0, lambda: seen.append("second"))

    scheduler.schedule(1.0, first)
    scheduler.run()
    assert seen == ["first", "second"]
    assert scheduler.now == pytest.approx(2.0)


def test_run_respects_max_time():
    scheduler = EventScheduler()
    seen = []
    scheduler.schedule(1.0, lambda: seen.append(1))
    scheduler.schedule(10.0, lambda: seen.append(2))
    scheduler.run(max_time=5.0)
    assert seen == [1]
    assert scheduler.now == pytest.approx(5.0)
    assert scheduler.pending() == 1


def test_run_respects_max_events():
    scheduler = EventScheduler()
    seen = []
    for i in range(5):
        scheduler.schedule(float(i + 1), lambda i=i: seen.append(i))
    scheduler.run(max_events=2)
    assert seen == [0, 1]


def test_run_stop_when_predicate():
    scheduler = EventScheduler()
    seen = []
    for i in range(5):
        scheduler.schedule(float(i + 1), lambda i=i: seen.append(i))
    scheduler.run(stop_when=lambda: len(seen) >= 3)
    assert len(seen) == 3


def test_run_until_advances_time_even_with_no_events():
    scheduler = EventScheduler()
    scheduler.run_until(42.0)
    assert scheduler.now == pytest.approx(42.0)


def test_events_processed_counter():
    scheduler = EventScheduler()
    for i in range(3):
        scheduler.schedule(float(i), lambda: None)
    scheduler.run()
    assert scheduler.events_processed == 3
