"""Tests for the discrete-event scheduler (:mod:`repro.sim.events`)."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventScheduler


def test_events_run_in_time_order():
    scheduler = EventScheduler()
    order = []
    scheduler.schedule(2.0, lambda: order.append("late"))
    scheduler.schedule(1.0, lambda: order.append("early"))
    scheduler.run()
    assert order == ["early", "late"]
    assert scheduler.now == pytest.approx(2.0)


def test_ties_broken_by_insertion_order():
    scheduler = EventScheduler()
    order = []
    scheduler.schedule(1.0, lambda: order.append("first"))
    scheduler.schedule(1.0, lambda: order.append("second"))
    scheduler.run()
    assert order == ["first", "second"]


def test_negative_delay_rejected():
    scheduler = EventScheduler()
    with pytest.raises(SimulationError):
        scheduler.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    scheduler = EventScheduler()
    scheduler.schedule(5.0, lambda: None)
    scheduler.run()
    with pytest.raises(SimulationError):
        scheduler.schedule_at(1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    scheduler = EventScheduler()
    fired = []
    event = scheduler.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    scheduler.run()
    assert not fired
    assert scheduler.events_processed == 0


def test_events_can_schedule_more_events():
    scheduler = EventScheduler()
    seen = []

    def first():
        seen.append("first")
        scheduler.schedule(1.0, lambda: seen.append("second"))

    scheduler.schedule(1.0, first)
    scheduler.run()
    assert seen == ["first", "second"]
    assert scheduler.now == pytest.approx(2.0)


def test_run_respects_max_time():
    scheduler = EventScheduler()
    seen = []
    scheduler.schedule(1.0, lambda: seen.append(1))
    scheduler.schedule(10.0, lambda: seen.append(2))
    scheduler.run(max_time=5.0)
    assert seen == [1]
    assert scheduler.now == pytest.approx(5.0)
    assert scheduler.pending() == 1


def test_run_respects_max_events():
    scheduler = EventScheduler()
    seen = []
    for i in range(5):
        scheduler.schedule(float(i + 1), lambda i=i: seen.append(i))
    scheduler.run(max_events=2)
    assert seen == [0, 1]


def test_run_stop_when_predicate():
    scheduler = EventScheduler()
    seen = []
    for i in range(5):
        scheduler.schedule(float(i + 1), lambda i=i: seen.append(i))
    scheduler.run(stop_when=lambda: len(seen) >= 3)
    assert len(seen) == 3


def test_run_until_advances_time_even_with_no_events():
    scheduler = EventScheduler()
    scheduler.run_until(42.0)
    assert scheduler.now == pytest.approx(42.0)


def test_events_processed_counter():
    scheduler = EventScheduler()
    for i in range(3):
        scheduler.schedule(float(i), lambda: None)
    scheduler.run()
    assert scheduler.events_processed == 3


# --------------------------------------------------------------------------- #
# Fast path: event pool, FIFO short-circuit lane, lazy-deletion compaction
# --------------------------------------------------------------------------- #
def test_pending_is_live_count_with_cancellations():
    scheduler = EventScheduler()
    events = [scheduler.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert scheduler.pending() == 6
    events[0].cancel()
    events[3].cancel()
    assert scheduler.pending() == 4
    # Cancelling twice (or after compaction dropped the event) changes nothing.
    events[0].cancel()
    assert scheduler.pending() == 4
    scheduler.run()
    assert scheduler.pending() == 0
    assert scheduler.events_processed == 4


def test_cancel_after_fire_is_a_noop_for_the_live_count():
    scheduler = EventScheduler()
    event = scheduler.schedule(1.0, lambda: None)
    scheduler.run()
    assert scheduler.pending() == 0
    event.cancel()
    assert scheduler.pending() == 0


def test_compaction_drops_cancelled_events_from_the_heap():
    scheduler = EventScheduler(fastpath=True)
    keep = [scheduler.schedule(100.0 + i, lambda: None) for i in range(3)]
    doomed = [scheduler.schedule(1_000_000.0 + i, lambda: None) for i in range(20)]
    for event in doomed:
        event.cancel()
    # The cancelled majority was compacted away instead of occupying the heap
    # until simulated time one million; the lazy-deletion invariant keeps
    # cancelled corpses at no more than half the heap.
    assert len(scheduler._queue) <= 2 * len(keep)
    assert scheduler.pending() == 3
    scheduler.run()
    assert scheduler.events_processed == 3


def test_pooled_events_are_recycled():
    scheduler = EventScheduler(fastpath=True)
    fired = []
    scheduler.schedule_pooled(1.0, lambda: fired.append("pooled"))
    scheduler.schedule_fifo(2.0, lambda: fired.append("fifo"))
    assert scheduler.pending() == 2
    scheduler.run()
    assert fired == ["pooled", "fifo"]
    assert scheduler.pool_size() == 2
    # The freed events are reused, not reallocated.
    recycled = set(map(id, scheduler._free))
    scheduler.schedule_fifo(1.0, lambda: fired.append("again"))
    assert id(scheduler._fifo[0]) in recycled
    scheduler.run()
    assert fired == ["pooled", "fifo", "again"]


def test_pool_reuse_does_not_leak_stale_callbacks_or_cancelled_state():
    scheduler = EventScheduler(fastpath=True)
    fired = []
    for round_index in range(50):
        for i in range(4):
            scheduler.schedule_fifo(1.0, lambda r=round_index, i=i: fired.append((r, i)))
        scheduler.run()
    assert fired == [(r, i) for r in range(50) for i in range(4)]
    # The pool never grew beyond the maximum number of simultaneously
    # scheduled deliveries.
    assert scheduler.pool_size() <= 4


def test_fifo_lane_merges_with_heap_in_time_seq_order():
    scheduler = EventScheduler(fastpath=True)
    order = []
    scheduler.schedule(2.0, lambda: order.append("heap@2"))
    scheduler.schedule_fifo(1.0, lambda: order.append("fifo@1"))
    scheduler.schedule_fifo(2.0, lambda: order.append("fifo@2"))
    scheduler.schedule(1.0, lambda: order.append("heap@1"))
    scheduler.run()
    # Ties at t=1 and t=2 break by scheduling order (seq), exactly like the
    # reference single-heap path would order them.
    assert order == ["fifo@1", "heap@1", "heap@2", "fifo@2"]


def test_fifo_lane_falls_back_to_heap_on_out_of_order_times():
    scheduler = EventScheduler(fastpath=True)
    order = []
    scheduler.schedule_fifo(5.0, lambda: order.append("late"))
    # A misdeclared delay model handing out a shorter delivery after a longer
    # one must still fire in time order.
    scheduler.schedule_fifo(1.0, lambda: order.append("early"))
    scheduler.run()
    assert order == ["early", "late"]


def test_fifo_and_pooled_reject_negative_delays():
    scheduler = EventScheduler(fastpath=True)
    with pytest.raises(SimulationError):
        scheduler.schedule_pooled(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        scheduler.schedule_fifo(-1.0, lambda: None)


def test_reference_path_routes_everything_through_the_heap():
    scheduler = EventScheduler(fastpath=False)
    fired = []
    scheduler.schedule_fifo(1.0, lambda: fired.append("a"))
    scheduler.schedule_pooled(2.0, lambda: fired.append("b"))
    assert not scheduler._fifo
    assert scheduler.pool_size() == 0
    scheduler.run()
    assert fired == ["a", "b"]
    assert scheduler.pool_size() == 0


def test_fastpath_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    assert EventScheduler().fastpath is False
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
    assert EventScheduler().fastpath is True
    monkeypatch.delenv("REPRO_SIM_FASTPATH")
    assert EventScheduler().fastpath is True


def test_run_max_time_considers_the_fifo_lane():
    scheduler = EventScheduler(fastpath=True)
    seen = []
    scheduler.schedule_fifo(1.0, lambda: seen.append(1))
    scheduler.schedule_fifo(10.0, lambda: seen.append(2))
    scheduler.run(max_time=5.0)
    assert seen == [1]
    assert scheduler.now == pytest.approx(5.0)
    assert scheduler.pending() == 1
    scheduler.run()
    assert seen == [1, 2]
