"""Randomized-schedule safety tests for the protocols.

Every seed produces a different interleaving of message deliveries and
operation invocations; across many seeds the protocols must always produce
linearizable register histories, comparable lattice outputs and agreeing
consensus decisions.  This is the simulation analogue of the paper's safety
theorems and complements the hand-crafted scenarios in the other test modules.
"""

import pytest

from repro.checkers import (
    check_consensus,
    check_lattice_agreement,
    check_register_linearizability,
)
from repro.experiments import (
    run_consensus_workload,
    run_lattice_workload,
    run_register_workload,
)

SEEDS = range(6)


@pytest.mark.parametrize("seed", SEEDS)
def test_register_linearizable_across_random_schedules(figure1_gqs, seed):
    pattern = figure1_gqs.fail_prone.patterns[seed % 4]
    result = run_register_workload(
        figure1_gqs, pattern=pattern, ops_per_process=2, seed=1_000 + seed, op_spacing=5.0
    )
    assert result.completed
    assert bool(check_register_linearizability(result.history, initial_value=0))


@pytest.mark.parametrize("seed", SEEDS)
def test_register_linearizable_with_heavy_concurrency(figure1_gqs, seed):
    """All invokers issue operations nearly simultaneously (op_spacing ~ one delay)."""
    result = run_register_workload(
        figure1_gqs, pattern=None, ops_per_process=2, seed=2_000 + seed, op_spacing=1.5
    )
    assert result.completed
    assert bool(check_register_linearizability(result.history, initial_value=0))


@pytest.mark.parametrize("seed", range(4))
def test_lattice_agreement_across_random_schedules(figure1_gqs, seed):
    pattern = figure1_gqs.fail_prone.patterns[seed % 4]
    result = run_lattice_workload(figure1_gqs, pattern=pattern, seed=3_000 + seed)
    assert result.completed
    verdict = check_lattice_agreement(result.history)
    assert verdict.ok, verdict.violations


@pytest.mark.parametrize("seed", range(4))
def test_consensus_agreement_across_random_schedules(figure1_gqs, seed):
    pattern = figure1_gqs.fail_prone.patterns[(seed + 1) % 4]
    result = run_consensus_workload(
        figure1_gqs, pattern=pattern, gst=15.0 + 10.0 * seed, seed=4_000 + seed, max_time=5_000.0
    )
    assert result.completed
    verdict = check_consensus(
        result.history,
        required_to_terminate=figure1_gqs.termination_component(pattern),
    )
    assert verdict.ok, verdict.violations
