"""Tests for the channel-repair suggestions (:mod:`repro.quorums.repair`)."""

import pytest

from repro.failures import FailProneSystem, FailurePattern
from repro.quorums import gqs_exists
from repro.quorums.repair import (
    RepairReport,
    harden_channels,
    suggest_channel_repairs,
)


def test_harden_channels_removes_them_from_every_pattern(figure1_modified_system):
    hardened = harden_channels(figure1_modified_system, [("a", "b")])
    for pattern in hardened:
        assert ("a", "b") not in pattern.disconnect_prone
    # Other channels untouched.
    assert any(("b", "c") in pattern.disconnect_prone for pattern in hardened)


def test_harden_channels_does_not_unprotect_crashed_processes():
    pattern = FailurePattern(["c"], [("a", "b")], name="f")
    system = FailProneSystem(["a", "b", "c"], [pattern])
    hardened = harden_channels(system, [("a", "b"), ("a", "c")])
    f = hardened.patterns[0]
    assert not f.disconnect_prone
    # Channels to the crash-prone process are still considered faulty.
    assert f.is_faulty_channel(("a", "c"))


def test_already_tolerable_system_needs_no_repair(figure1_system):
    report = suggest_channel_repairs(figure1_system)
    assert report.already_tolerable
    assert report.repairable
    assert report.suggestions == []


def test_example9_modified_system_repaired_by_hardening_ab(figure1_modified_system):
    """Hardening the single channel (a, b) undoes Example 9's modification."""
    assert not gqs_exists(figure1_modified_system)
    report = suggest_channel_repairs(figure1_modified_system, max_channels=1)
    assert report.repairable
    repaired_channel_sets = [set(s.channels) for s in report.suggestions]
    assert {("a", "b")} in repaired_channel_sets
    for suggestion in report.suggestions:
        assert gqs_exists(harden_channels(figure1_modified_system, list(suggestion.channels)))


def test_suggestions_are_inclusion_minimal(figure1_modified_system):
    report = suggest_channel_repairs(figure1_modified_system, max_channels=2)
    suggestions = [s.channels for s in report.suggestions]
    for first in suggestions:
        for second in suggestions:
            if first is not second:
                assert not first < second


def test_max_suggestions_limits_search(figure1_modified_system):
    report = suggest_channel_repairs(figure1_modified_system, max_channels=2, max_suggestions=1)
    assert len(report.suggestions) == 1


def test_unrepairable_within_budget_reports_empty():
    # Any two of three processes may crash: no channel hardening can help,
    # because the problem is process failures, not connectivity.
    system = FailProneSystem.crash_threshold(["a", "b", "c"], 2)
    report = suggest_channel_repairs(system, max_channels=2)
    assert not report.already_tolerable
    assert not report.suggestions
    assert not report.repairable


def test_report_counts_candidates(figure1_modified_system):
    report = suggest_channel_repairs(figure1_modified_system, max_channels=1)
    assert report.candidates_considered >= 1
    assert isinstance(report, RepairReport)
