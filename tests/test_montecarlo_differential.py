"""Differential battery: the bitset Monte Carlo engine vs the set-based engine.

The bitmask engine (:mod:`repro.montecarlo.bitsampler`) is a faster
representation of the same experiment, never a different experiment.  These
tests pin the strongest form of that claim: for identical shard seeds the two
engines consume the RNG stream draw for draw and therefore produce **the same
counters on every sample**, not merely statistically compatible estimates.
The battery runs the samplers head-to-head, sweeps ≥20 random systems and
configurations through both engines, and checks the public ``sweep`` JSON is
byte-identical across engines and across ``jobs`` counts.
"""

import json
import random

import pytest

from repro import api
from repro.errors import ReproError
from repro.failures import FailProneSystem, FailurePattern
from repro.graph import ProcessIndex
from repro.montecarlo import (
    MONTE_CARLO_ENGINES,
    admissibility_sweep,
    asymmetric_admissibility_sweep,
    estimate_reliability,
    reliability_sweep,
)
from repro.montecarlo.bitsampler import (
    sample_admissibility_masks,
    sample_reliability_masks,
)
from repro.montecarlo.reliability import _sample_pattern, resolve_engine
from repro.failures.generators import random_failure_pattern
from repro.quorums import GeneralizedQuorumSystem


def _random_quorum_system(rng, n):
    """A random (not necessarily valid) GQS — reliability estimation never
    consults validity, only the quorum families."""
    processes = ["p{}".format(i) for i in range(n)]
    fail_prone = FailProneSystem(
        processes, [FailurePattern.crash_only([processes[0]], name="f0")]
    )

    def family():
        count = rng.randint(1, 3)
        return [
            rng.sample(processes, rng.randint(1, n)) for _ in range(count)
        ]

    return GeneralizedQuorumSystem(fail_prone, family(), family(), validate=False)


# --------------------------------------------------------------------- #
# Sampler twins: identical RNG stream, identical decoded patterns
# --------------------------------------------------------------------- #
def test_reliability_mask_sampler_is_a_stream_twin_of_sample_pattern():
    processes = ["p{}".format(i) for i in range(6)]
    index = ProcessIndex(processes)
    order = [index.position(p) for p in sorted(processes, key=repr)]
    for seed in range(30):
        rng_set = random.Random(seed)
        rng_bit = random.Random(seed)
        for crash_prob, disconnect_prob in [(0.3, 0.4), (1.0, 0.0), (0.9, 0.9)]:
            pattern = _sample_pattern(
                sorted(processes, key=repr), rng_set, crash_prob, disconnect_prob
            )
            crash_mask, succ_clear = sample_reliability_masks(
                order, rng_bit, crash_prob, disconnect_prob
            )
            assert index.set_of(crash_mask) == pattern.crash_prone
            assert index.channels_of(succ_clear) == pattern.disconnect_prone
            # Not just the same value: the exact same number of draws.
            assert rng_set.getstate() == rng_bit.getstate()


def test_admissibility_mask_sampler_is_a_stream_twin_of_random_pattern():
    processes = ["p{}".format(i) for i in range(5)]
    index = ProcessIndex(processes)
    order = [index.position(p) for p in processes]
    for seed in range(30):
        for max_crashes in (None, 1, 2):
            rng_set = random.Random(seed)
            rng_bit = random.Random(seed)
            pattern = random_failure_pattern(
                processes, rng_set, crash_prob=0.5, disconnect_prob=0.4,
                max_crashes=max_crashes,
            )
            crash_mask, succ_clear = sample_admissibility_masks(
                order, rng_bit, 0.5, 0.4, max_crashes
            )
            assert index.set_of(crash_mask) == pattern.crash_prone
            assert index.channels_of(succ_clear) == pattern.disconnect_prone
            assert rng_set.getstate() == rng_bit.getstate()


# --------------------------------------------------------------------- #
# Engine equality on random systems / configurations
# --------------------------------------------------------------------- #
def test_reliability_counters_equal_on_random_systems():
    """≥20 random quorum systems: identical ReliabilityEstimate per engine."""
    rng = random.Random(2024)
    for case in range(24):
        quorum_system = _random_quorum_system(rng, rng.randint(3, 8))
        crash_prob = rng.choice([0.0, 0.1, 0.3, 0.7, 1.0])
        disconnect_prob = rng.choice([0.0, 0.2, 0.5, 0.9])
        seed = rng.randrange(10_000)
        estimates = {
            engine: estimate_reliability(
                quorum_system,
                crash_prob=crash_prob,
                disconnect_prob=disconnect_prob,
                samples=60,
                seed=seed,
                engine=engine,
            )
            for engine in MONTE_CARLO_ENGINES
        }
        assert estimates["bitset"] == estimates["set"], (
            case, crash_prob, disconnect_prob, seed,
        )


def test_admissibility_counters_equal_on_random_configurations():
    """≥20 random sweep configurations: identical per-point counters."""
    rng = random.Random(77)
    for case in range(22):
        n = rng.randint(3, 7)
        config = dict(
            disconnect_probs=(rng.choice([0.0, 0.3, 0.6, 0.9]),),
            n=n,
            num_patterns=rng.randint(1, 4),
            crash_prob=rng.choice([0.0, 0.2, 0.5, 0.9]),
            samples=40,
            max_crashes=rng.choice([None, 1, n - 1]),
            seed=rng.randrange(10_000),
        )
        points = {
            engine: admissibility_sweep(engine=engine, **config)
            for engine in MONTE_CARLO_ENGINES
        }
        assert points["bitset"] == points["set"], (case, config)


def test_asymmetric_sweep_equal_across_engines():
    tables = {
        engine: asymmetric_admissibility_sweep(
            n_values=(3, 4, 5, 6), num_patterns=3, samples=40, seed=9, engine=engine
        )
        for engine in MONTE_CARLO_ENGINES
    }
    assert tables["bitset"].rows == tables["set"].rows


def test_reliability_counters_independent_of_jobs(figure1_gqs):
    reference = estimate_reliability(
        figure1_gqs, crash_prob=0.2, disconnect_prob=0.3, samples=96, seed=11, jobs=1
    )
    for jobs in (2, 4):
        for engine in MONTE_CARLO_ENGINES:
            assert (
                estimate_reliability(
                    figure1_gqs,
                    crash_prob=0.2,
                    disconnect_prob=0.3,
                    samples=96,
                    seed=11,
                    jobs=jobs,
                    engine=engine,
                )
                == reference
            )


# --------------------------------------------------------------------- #
# Public sweep JSON: byte-identical across engines and jobs counts
# --------------------------------------------------------------------- #
def test_sweep_json_bytes_identical_across_engines_and_jobs():
    outputs = set()
    for engine in MONTE_CARLO_ENGINES:
        for jobs in (1, 2, 4):
            outcome = api.sweep(
                kind="all", probs=(0.0, 0.3), n=4, patterns=2, samples=24,
                seed=5, jobs=jobs, engine=engine,
            )
            outputs.add(outcome.to_json().encode("utf-8"))
    assert len(outputs) == 1
    payload = json.loads(outputs.pop().decode("utf-8"))
    assert set(payload) == {"admissibility", "reliability"}
    assert all(point["samples"] == 24 for point in payload["admissibility"])


def test_unknown_engine_is_rejected_everywhere(figure1_gqs):
    with pytest.raises(ReproError, match="unknown Monte Carlo engine"):
        resolve_engine("frozenset", None, None)
    with pytest.raises(ReproError):
        estimate_reliability(figure1_gqs, samples=4, engine="frozenset")
    with pytest.raises(ReproError):
        admissibility_sweep(disconnect_probs=(0.1,), samples=4, engine="frozenset")
    with pytest.raises(ReproError):
        asymmetric_admissibility_sweep(n_values=(3,), samples=4, engine="frozenset")
