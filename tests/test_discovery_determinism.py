"""Hash-seed independence of the GQS decision procedure (regression).

The seed implementation iterated ``set``-backed adjacency, so candidate order,
the chosen witness and ``nodes_explored`` all depended on ``PYTHONHASHSEED``.
These tests run discovery in subprocesses under two different hash seeds and
compare the complete observable output byte for byte.
"""

from __future__ import annotations

import os
import subprocess
import sys

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Systems with channel failures (multiple SCC candidates per pattern), where
#: a hash-order-dependent traversal has the most room to reorder the search.
DISCOVERY_SCRIPT = r"""
import json

from repro.failures import (
    builtin_fail_prone_system,
    large_threshold_system,
    multi_region_system,
    random_fail_prone_system,
)
from repro.quorums import candidate_pairs, discover_gqs
from repro.types import sorted_processes

systems = [
    builtin_fail_prone_system("figure1"),
    builtin_fail_prone_system("ring-6"),
    multi_region_system(regions=4, replicas_per_region=3),
    large_threshold_system(n=20, max_crashes=3, num_patterns=8, zones=4, catastrophic=True),
    random_fail_prone_system(n=6, num_patterns=5, disconnect_prob=0.4, seed=13),
]
report = []
for system in systems:
    entry = {"system": system.name}
    for algorithm in ("pruned", "naive"):
        result = discover_gqs(system, validate=False, algorithm=algorithm)
        entry[algorithm] = {
            "exists": result.exists,
            "nodes_explored": result.nodes_explored,
            "witness": [
                {
                    "pattern": pattern.name,
                    "read": sorted_processes(choice.read_quorum),
                    "write": sorted_processes(choice.write_quorum),
                }
                for pattern, choice in result.choices.items()
            ],
        }
    entry["candidates"] = [
        [sorted_processes(c.write_quorum) for c in candidate_pairs(system, f)]
        for f in system.patterns
    ]
    report.append(entry)
print(json.dumps(report, sort_keys=True))
"""


def _run_under_hash_seed(hash_seed: str, argv=None) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    command = argv if argv is not None else [sys.executable, "-c", DISCOVERY_SCRIPT]
    completed = subprocess.run(
        command, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
    )
    assert completed.returncode in (0, 2), completed.stderr.decode()
    return completed.stdout


def test_discovery_output_is_hash_seed_independent():
    """Witnesses, candidate order and nodes_explored: byte-identical streams."""
    out_a = _run_under_hash_seed("0")
    out_b = _run_under_hash_seed("4242")
    assert out_a == out_b
    assert out_a  # the script actually produced a report


def test_cli_discover_json_is_hash_seed_independent():
    """The exact check CI runs: `repro quorums discover --format json` twice."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "quorums",
        "discover",
        "--builtin",
        "multiregion-4x3",
        "--format",
        "json",
    ]
    out_a = _run_under_hash_seed("1", argv)
    out_b = _run_under_hash_seed("31337", argv)
    assert out_a == out_b
    assert b'"nodes_explored"' in out_a
