"""Tests for the partially synchronous consensus protocol (Figure 6)."""

import pytest

from repro.checkers import check_consensus
from repro.experiments import run_consensus_workload
from repro.protocols import ConsensusProcess, consensus_factory
from repro.quorums import GeneralizedQuorumSystem
from repro.sim import Cluster, PartialSynchronyDelay
from repro.types import sorted_processes


def make_cluster(quorum_system, gst=20.0, delta=1.0, view_duration=5.0, seed=0):
    return Cluster(
        sorted_processes(quorum_system.processes),
        consensus_factory(quorum_system, view_duration=view_duration),
        PartialSynchronyDelay(gst=gst, delta=delta, seed=seed),
    )


def test_leader_rotates_round_robin(figure1_gqs):
    cluster = make_cluster(figure1_gqs)
    process: ConsensusProcess = cluster.processes["a"]
    ordered = sorted_processes(figure1_gqs.processes)
    n = len(ordered)
    leaders = [process.leader(view) for view in range(1, n + 1)]
    assert leaders == ordered
    assert process.leader(n + 1) == ordered[0]


def test_single_proposer_decides_failure_free(figure1_gqs):
    cluster = make_cluster(figure1_gqs, seed=1)
    handle = cluster.invoke("a", "propose", "v-a")
    assert cluster.run_until_done([handle], max_time=2_000.0)
    assert handle.result == "v-a"


def test_all_proposers_agree_failure_free(figure1_gqs):
    result = run_consensus_workload(figure1_gqs, pattern=None, gst=10.0, seed=2)
    assert result.completed
    check = check_consensus(result.history, required_to_terminate=figure1_gqs.processes)
    assert check.ok, check.violations
    assert len(set(result.extra["decided_values"])) == 1


def test_consensus_under_every_figure1_pattern(figure1_gqs):
    for index, pattern in enumerate(figure1_gqs.fail_prone.patterns):
        result = run_consensus_workload(
            figure1_gqs, pattern=pattern, gst=20.0, seed=10 + index, max_time=4_000.0
        )
        component = figure1_gqs.termination_component(pattern)
        check = check_consensus(result.history, required_to_terminate=component)
        assert result.completed, "propose at {} must decide under {}".format(
            sorted(component, key=str), pattern.name
        )
        assert check.ok, check.violations


def test_decision_is_a_proposed_value(figure1_gqs):
    f2 = figure1_gqs.fail_prone.patterns[1]
    result = run_consensus_workload(figure1_gqs, pattern=f2, gst=15.0, seed=3)
    proposals = {record.argument for record in result.history}
    for record in result.history.complete_records():
        assert record.result in proposals


def test_late_gst_delays_but_does_not_prevent_decision(figure1_gqs):
    f1 = figure1_gqs.fail_prone.patterns[0]
    early = run_consensus_workload(figure1_gqs, pattern=f1, gst=10.0, seed=4, max_time=5_000.0)
    late = run_consensus_workload(figure1_gqs, pattern=f1, gst=150.0, seed=4, max_time=5_000.0)
    assert early.completed and late.completed
    assert late.metrics.max_latency >= early.metrics.max_latency


def test_view_duration_grows_linearly(figure1_gqs):
    cluster = make_cluster(figure1_gqs, view_duration=3.0)
    cluster.run(max_time=3.0 + 0.5)
    process: ConsensusProcess = cluster.processes["a"]
    # After the first timer (1 * C) expired the process is in view 2.
    assert process.view == 2


def test_decided_flag_and_view_recorded(figure1_gqs):
    cluster = make_cluster(figure1_gqs, gst=5.0, seed=6)
    handle = cluster.invoke("b", "propose", "from-b")
    cluster.run_until_done([handle], max_time=2_000.0, require_completion=True)
    process: ConsensusProcess = cluster.processes["b"]
    assert process.has_decided
    assert process.decided_view >= 1
    assert process.decided_value == handle.result


def test_proposal_preserved_across_views(figure1_gqs):
    """A value accepted in an earlier view is the only one that can be decided later."""
    cluster = make_cluster(figure1_gqs, gst=40.0, seed=7, view_duration=4.0)
    first = cluster.invoke("a", "propose", "first-value")
    cluster.run(max_time=60.0)
    second = cluster.invoke("b", "propose", "second-value")
    cluster.run_until_done([first, second], max_time=4_000.0)
    decided = {h.result for h in (first, second) if h.done}
    assert len(decided) == 1
