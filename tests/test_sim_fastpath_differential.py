"""Differential battery: the simulator fast path vs the reference scheduler.

The fast path (:mod:`repro.sim.events`: pooled delivery events, the FIFO
short-circuit lane for :attr:`~repro.sim.DelayModel.preserves_fifo` models,
lazy-deletion heap compaction) is a faster implementation of the same
simulator, never a different simulator.  These tests pin the strongest form of
that claim, mirroring PR 7's Monte Carlo battery: every catalogue scenario is
recorded under both paths and the trace directories are compared **byte for
byte** (jobs 1 and 2 included), per-workload histories / ``NetworkStats`` /
``events_processed`` are asserted equal, and property tests cover pool
recycling (no stale callback or cancelled state survives reuse) and the FIFO
lane's ``(time, seq)`` tie-break equivalence against a reference scheduler fed
the same schedule.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest

from repro.experiments import run_workload
from repro.scenarios.registry import all_scenarios
from repro.scenarios.runner import run_scenario, sweep_scenarios
from repro.sim import EventScheduler, FixedDelay
from repro.sim.events import FASTPATH_ENV


@contextmanager
def sim_mode(fastpath):
    """Force every scheduler built inside the block onto one path."""
    previous = os.environ.get(FASTPATH_ENV)
    os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FASTPATH_ENV]
        else:
            os.environ[FASTPATH_ENV] = previous


def _workload_fingerprint(kind, quorum_system, seed, delay_model=None):
    result = run_workload(kind, quorum_system, seed=seed, delay_model=delay_model)
    cluster = result.cluster
    return {
        "records": result.history.records,
        "completed": result.completed,
        "stats": vars(cluster.network.stats),
        "events_processed": cluster.network.scheduler.events_processed,
        "pending": cluster.network.scheduler.pending(),
        "now": cluster.now,
    }


# --------------------------------------------------------------------- #
# Per-workload equality: histories, NetworkStats, events_processed
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["register", "snapshot", "lattice", "consensus", "paxos"])
def test_workload_histories_stats_and_event_counts_equal(kind, figure1_gqs):
    for seed in (0, 3):
        with sim_mode(False):
            reference = _workload_fingerprint(kind, figure1_gqs, seed)
        with sim_mode(True):
            fast = _workload_fingerprint(kind, figure1_gqs, seed)
        assert fast == reference, (kind, seed)


def test_fixed_delay_workload_exercises_the_fifo_lane_and_stays_equal(figure1_gqs):
    """FixedDelay is the model that actually routes through the FIFO lane."""
    with sim_mode(False):
        reference = _workload_fingerprint(
            "register", figure1_gqs, seed=1, delay_model=FixedDelay(1.0)
        )
    with sim_mode(True):
        fast = _workload_fingerprint(
            "register", figure1_gqs, seed=1, delay_model=FixedDelay(1.0)
        )
    assert fast == reference


# --------------------------------------------------------------------- #
# Scenario catalogue: recorded trace directories byte-identical
# --------------------------------------------------------------------- #
def _read_directory(directory):
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
    }


def test_catalogue_traces_byte_identical_across_paths_and_jobs(tmp_path):
    """Every catalogue scenario, fast vs reference, jobs 1 and 2."""
    recordings = {}
    for label, fastpath, jobs in (
        ("ref-jobs1", False, 1),
        ("fast-jobs1", True, 1),
        ("fast-jobs2", True, 2),
    ):
        directory = str(tmp_path / label)
        with sim_mode(fastpath):
            results = sweep_scenarios(runs=2, seed=7, jobs=jobs, record_traces=directory)
        recordings[label] = (
            _read_directory(directory),
            [result.to_json() for result in results],
        )
    names = {scenario.name for scenario in all_scenarios()}
    reference_files, reference_tables = recordings["ref-jobs1"]
    # One trace per (scenario, run) — the whole catalogue is really covered.
    assert len(reference_files) == 2 * len(names)
    for label in ("fast-jobs1", "fast-jobs2"):
        files, tables = recordings[label]
        assert files == reference_files, label
        assert tables == reference_tables, label


def test_single_scenario_rows_equal_with_reference_jobs2(tmp_path):
    """The reference path is itself jobs-independent; pin one scenario at jobs 2."""
    with sim_mode(False):
        serial = run_scenario("heavy-contention-register", runs=3, seed=11, jobs=1)
        parallel = run_scenario("heavy-contention-register", runs=3, seed=11, jobs=2)
    with sim_mode(True):
        fast = run_scenario("heavy-contention-register", runs=3, seed=11, jobs=2)
    assert serial.rows == parallel.rows == fast.rows


# --------------------------------------------------------------------- #
# Property: pool recycling leaks no stale state through reuse
# --------------------------------------------------------------------- #
def test_pool_recycling_is_invisible_under_random_schedules():
    """Random mixes of pooled/FIFO/plain events with cancellations: the fast
    scheduler fires exactly what the reference scheduler fires, in the same
    order, and recycled slots never resurrect an old callback."""
    for case in range(25):
        rng = random.Random(case)
        plan = []
        for step in range(rng.randint(5, 40)):
            lane = rng.choice(["plain", "pooled", "fifo"])
            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5])
            cancel = lane == "plain" and rng.random() < 0.3
            plan.append((lane, delay, cancel))

        def execute(scheduler):
            fired = []
            cancellable = []

            def spawn(tag, depth):
                def callback():
                    fired.append(tag)
                    # A third of the events schedule follow-up deliveries, so
                    # recycled slots are re-acquired while the run is hot.
                    if depth < 2 and tag % 3 == 0:
                        scheduler.schedule_fifo(1.0, spawn(tag + 1000, depth + 1))

                return callback

            for index, (lane, delay, cancel) in enumerate(plan):
                if lane == "plain":
                    event = scheduler.schedule(delay, spawn(index, 0))
                    if cancel:
                        cancellable.append(event)
                elif lane == "pooled":
                    scheduler.schedule_pooled(delay, spawn(index, 0))
                else:
                    scheduler.schedule_fifo(delay, spawn(index, 0))
            for event in cancellable:
                event.cancel()
            scheduler.run()
            return fired, scheduler.events_processed, scheduler.now, scheduler.pending()

        assert execute(EventScheduler(fastpath=True)) == execute(
            EventScheduler(fastpath=False)
        ), case


def test_pool_never_fires_a_callback_twice():
    scheduler = EventScheduler(fastpath=True)
    counts = {}
    for wave in range(30):
        for i in range(8):
            key = (wave, i)
            scheduler.schedule_fifo(
                float(i % 3), lambda key=key: counts.__setitem__(key, counts.get(key, 0) + 1)
            )
        scheduler.run()
    assert all(count == 1 for count in counts.values())
    assert len(counts) == 30 * 8
    assert scheduler.pool_size() <= 8


# --------------------------------------------------------------------- #
# Property: FIFO-lane tie-break equivalence
# --------------------------------------------------------------------- #
def test_fifo_lane_tie_breaks_match_the_reference_heap():
    """Monotone (FIFO-preserving) schedules full of exact time ties: the lane
    must reproduce the reference heap's (time, seq) order event for event."""
    for case in range(25):
        rng = random.Random(1000 + case)
        # Non-decreasing target times with heavy tie density, interleaved
        # across the heap lane (timers) and the FIFO lane (deliveries).
        entries = []
        time_now = 0.0
        for index in range(rng.randint(10, 60)):
            if rng.random() < 0.6:
                time_now += rng.choice([0.0, 0.0, 1.0])
            entries.append((time_now, rng.random() < 0.5))

        def execute(scheduler):
            fired = []
            for index, (at, use_fifo) in enumerate(entries):
                if use_fifo:
                    scheduler.schedule_fifo(at, lambda index=index: fired.append(index))
                else:
                    scheduler.schedule(at, lambda index=index: fired.append(index))
            scheduler.run()
            return fired

        assert execute(EventScheduler(fastpath=True)) == execute(
            EventScheduler(fastpath=False)
        ), case
