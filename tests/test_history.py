"""Tests for operation histories (:mod:`repro.history`)."""

import pytest

from repro.errors import HistoryError
from repro.history import History, OperationRecord


def record(pid, kind, arg, result, start, end, op_id=0):
    return OperationRecord(
        process_id=pid,
        kind=kind,
        argument=arg,
        result=result,
        invoked_at=start,
        completed_at=end,
        op_id=op_id,
    )


def test_record_completeness_and_precedence():
    first = record("a", "write", 1, "ack", 0.0, 1.0)
    second = record("b", "read", None, 1, 2.0, 3.0)
    assert first.is_complete
    assert first.precedes(second)
    assert not second.precedes(first)
    assert not first.overlaps(second)


def test_overlapping_records():
    first = record("a", "write", 1, "ack", 0.0, 5.0)
    second = record("b", "read", None, 1, 2.0, 3.0)
    assert first.overlaps(second)
    assert second.overlaps(first)


def test_incomplete_record_never_precedes():
    pending = record("a", "write", 1, None, 0.0, None)
    later = record("b", "read", None, 0, 10.0, 11.0)
    assert not pending.precedes(later)
    assert not pending.is_complete


def test_history_rejects_negative_duration():
    with pytest.raises(HistoryError):
        History([record("a", "write", 1, "ack", 5.0, 1.0)])


def test_history_add_and_filters():
    history = History()
    history.add(record("a", "write", 1, "ack", 0.0, 1.0))
    history.add(record("a", "read", None, 1, 2.0, 3.0))
    history.add(record("b", "write", 2, None, 2.5, None))
    assert len(history) == 3
    assert len(history.complete_records()) == 2
    assert len(history.incomplete_records()) == 1
    assert len(history.of_kind("write")) == 2
    assert len(history.by_process("a")) == 2


def test_history_is_sequential():
    sequential = History(
        [
            record("a", "write", 1, "ack", 0.0, 1.0),
            record("b", "read", None, 1, 2.0, 3.0),
        ]
    )
    concurrent = History(
        [
            record("a", "write", 1, "ack", 0.0, 4.0),
            record("b", "read", None, 1, 2.0, 3.0),
        ]
    )
    assert sequential.is_sequential()
    assert not concurrent.is_sequential()


def test_history_latency_statistics():
    history = History(
        [
            record("a", "write", 1, "ack", 0.0, 2.0),
            record("b", "read", None, 1, 0.0, 4.0),
            record("c", "read", None, 1, 0.0, None),
        ]
    )
    assert history.max_latency() == pytest.approx(4.0)
    assert history.mean_latency() == pytest.approx(3.0)


def test_empty_history_statistics():
    history = History()
    assert history.max_latency() == 0.0
    assert history.mean_latency() == 0.0
    assert history.is_sequential()


def test_history_from_handles():
    class FakeHandle:
        def __init__(self):
            self.process_id = "a"
            self.kind = "write"
            self.argument = 7
            self.result = "ack"
            self.invoked_at = 1.0
            self.completed_at = 2.0
            self.done = True
            self.op_id = 42

    history = History.from_handles([FakeHandle()])
    assert len(history) == 1
    assert history.records[0].op_id == 42
    assert history.records[0].result == "ack"
