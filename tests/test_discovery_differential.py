"""Differential property battery for the GQS decision procedure.

Three independent implementations must agree on randomized small systems:

* ``discover_gqs(..., algorithm="pruned")`` — the bitmask forward-checking
  search used in production;
* ``discover_gqs(..., algorithm="naive")`` — the reference backtracker with
  set-based candidate enumeration;
* ``gqs_exists_bruteforce`` — exhaustive enumeration over arbitrary subsets.

The battery also pins the candidate enumeration (bitmask vs. Tarjan-based) to
byte-equality and checks :func:`suggest_channel_repairs` minimality under the
incremental candidate cache.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import figure1_modified_fail_prone_system
from repro.failures import random_fail_prone_system
from repro.quorums import (
    candidate_pairs,
    candidate_pairs_reference,
    discover_gqs,
    gqs_exists,
    gqs_exists_bruteforce,
    harden_channels,
    suggest_channel_repairs,
)

#: (n, num_patterns, crash_prob, disconnect_prob) regimes for the random sweep.
REGIMES = [
    (3, 2, 0.2, 0.3),
    (4, 3, 0.2, 0.3),
    (4, 4, 0.3, 0.5),
    (5, 3, 0.15, 0.25),
    (5, 5, 0.25, 0.4),
]


def _random_systems():
    for regime_index, (n, num_patterns, crash_prob, disconnect_prob) in enumerate(REGIMES):
        for seed in range(8):
            yield random_fail_prone_system(
                n=n,
                num_patterns=num_patterns,
                crash_prob=crash_prob,
                disconnect_prob=disconnect_prob,
                seed=1000 * regime_index + seed,
            )


def test_pruned_naive_and_bruteforce_agree_on_random_systems():
    checked = 0
    admitted = 0
    for system in _random_systems():
        pruned = discover_gqs(system, validate=False)
        naive = discover_gqs(system, validate=False, algorithm="naive")
        brute = gqs_exists_bruteforce(system)
        assert pruned.exists == naive.exists == brute, system.describe()
        checked += 1
        admitted += int(pruned.exists)
    assert checked == 5 * 8
    # The regimes must exercise both verdicts, or the battery proves nothing.
    assert 0 < admitted < checked


def test_pruned_and_naive_witnesses_are_identical_and_valid():
    for system in _random_systems():
        pruned = discover_gqs(system)
        naive = discover_gqs(system, algorithm="naive")
        if not pruned.exists:
            continue
        assert pruned.quorum_system is not None and pruned.quorum_system.is_valid()
        assert naive.quorum_system is not None
        for pattern in system.patterns:
            assert pruned.choices[pattern].read_quorum == naive.choices[pattern].read_quorum
            assert pruned.choices[pattern].write_quorum == naive.choices[pattern].write_quorum


def test_forward_checking_never_explores_more_nodes_than_the_reference():
    for system in _random_systems():
        pruned = discover_gqs(system, validate=False)
        naive = discover_gqs(system, validate=False, algorithm="naive")
        assert pruned.nodes_explored <= naive.nodes_explored, system.describe()


def test_bitmask_candidates_match_the_reference_enumeration():
    for system in _random_systems():
        for pattern in system.patterns:
            fast = candidate_pairs(system, pattern)
            slow = candidate_pairs_reference(system, pattern)
            assert [(c.read_quorum, c.write_quorum) for c in fast] == [
                (c.read_quorum, c.write_quorum) for c in slow
            ]


def test_candidate_order_is_fully_specified():
    """Ties on (|read|, |write|) are broken by the sorted process lists."""
    for system in _random_systems():
        for pattern in system.patterns:
            candidates = candidate_pairs(system, pattern)
            keys = [
                (
                    -len(c.read_quorum),
                    -len(c.write_quorum),
                    tuple(sorted(map(repr, c.write_quorum))),
                    tuple(sorted(map(repr, c.read_quorum))),
                )
                for c in candidates
            ]
            assert keys == sorted(keys)
            assert len(set(keys)) == len(keys)  # the order admits no ties at all


# ---------------------------------------------------------------------- #
# Repair under the incremental candidate cache
# ---------------------------------------------------------------------- #
def _intolerable_systems():
    yield figure1_modified_fail_prone_system()
    for seed in range(30):
        system = random_fail_prone_system(
            n=4, num_patterns=3, crash_prob=0.3, disconnect_prob=0.6, seed=7000 + seed
        )
        if not gqs_exists(system):
            yield system


def test_repair_suggestions_are_minimal_and_sufficient():
    suggestions_seen = 0
    for system in itertools.islice(_intolerable_systems(), 6):
        report = suggest_channel_repairs(system, max_channels=2)
        assert not report.already_tolerable
        for suggestion in report.suggestions:
            # Sufficient: hardening the suggested channels restores a GQS.
            assert gqs_exists(harden_channels(system, list(suggestion.channels)))
            # Minimal: no proper subset of the suggestion repairs the system.
            for size in range(1, len(suggestion.channels)):
                for subset in itertools.combinations(suggestion.channels, size):
                    assert not gqs_exists(harden_channels(system, list(subset)))
            suggestions_seen += 1
    assert suggestions_seen > 0


def test_repair_reuses_cached_candidates_for_untouched_patterns():
    system = figure1_modified_fail_prone_system()
    report = suggest_channel_repairs(system, max_channels=2)
    assert report.candidates_considered > 0
    # Every hardened variant leaves at least the crash-only patterns untouched,
    # so the incremental cache must have been hit.
    assert report.candidates_reused > 0
    # The incremental cache must not change the answer: a cache-cold rerun on a
    # freshly built system yields the same suggestions.
    cold = suggest_channel_repairs(figure1_modified_fail_prone_system(), max_channels=2)
    assert [s.channels for s in cold.suggestions] == [s.channels for s in report.suggestions]


def test_harden_channels_warm_cache_does_not_leak_stale_candidates():
    """A pattern whose disconnect set changes must be recomputed, not adopted."""
    system = figure1_modified_fail_prone_system()
    # Populate the cache for every pattern.
    discover_gqs(system, validate=False)
    touched_channel = ("a", "b")
    hardened = harden_channels(system, [touched_channel])
    for pattern in hardened.patterns:
        fast = candidate_pairs(hardened, pattern)
        slow = candidate_pairs_reference(hardened, pattern)
        assert [(c.read_quorum, c.write_quorum) for c in fast] == [
            (c.read_quorum, c.write_quorum) for c in slow
        ]
