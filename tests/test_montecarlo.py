"""Tests for the Monte Carlo admissibility and reliability studies."""

import pytest

from repro.montecarlo import (
    admissibility_sweep,
    admissibility_table,
    estimate_reliability,
    gqs_strictly_weaker_examples,
    reliability_sweep,
    reliability_table,
    sample_fail_prone_system,
)
from repro.quorums import gqs_exists, strong_system_exists

import random


def test_sample_fail_prone_system_shape():
    rng = random.Random(0)
    system = sample_fail_prone_system(rng, n=4, num_patterns=3, crash_prob=0.2, disconnect_prob=0.3)
    assert len(system.processes) == 4
    assert len(system) == 3


def test_admissibility_sweep_hierarchy_holds():
    points = admissibility_sweep(
        disconnect_probs=(0.0, 0.3), n=4, num_patterns=2, crash_prob=0.2, samples=20, seed=1
    )
    assert len(points) == 2
    for point in points:
        assert 0.0 <= point.classical_fraction <= point.strong_fraction <= 1.0
        assert point.strong_fraction <= point.generalized_fraction <= 1.0


def test_admissibility_without_channel_failures_everything_coincides():
    points = admissibility_sweep(
        disconnect_probs=(0.0,), n=4, num_patterns=2, crash_prob=0.2, samples=20, seed=2
    )
    point = points[0]
    assert point.classical_fraction == point.strong_fraction == point.generalized_fraction


def test_admissibility_gap_appears_with_channel_failures():
    points = admissibility_sweep(
        disconnect_probs=(0.5,), n=4, num_patterns=3, crash_prob=0.1, samples=60, seed=3
    )
    point = points[0]
    # With heavy channel failures the GQS condition should admit strictly more
    # systems than the classical (channel-failure-free) condition.
    assert point.generalized_fraction > point.classical_fraction


def test_admissibility_table_rendering():
    points = admissibility_sweep(disconnect_probs=(0.2,), samples=5, n=4, num_patterns=2, seed=4)
    table = admissibility_table(points)
    assert "GQS" in table.to_text()
    assert len(table.rows) == 1


def test_gqs_strictly_weaker_witnesses_are_real():
    witnesses = gqs_strictly_weaker_examples(n=5, num_patterns=3, samples=120, seed=2)
    # The asymmetric-partition distribution regularly separates the conditions.
    assert witnesses
    for system in witnesses[:5]:
        assert gqs_exists(system)
        assert not strong_system_exists(system)


def test_sample_asymmetric_partition_system_shape():
    import random as _random

    from repro.montecarlo import sample_asymmetric_partition_system

    system = sample_asymmetric_partition_system(_random.Random(0), n=5, num_patterns=3)
    assert len(system.processes) == 5
    assert len(system) == 3
    assert all(f.disconnect_prone for f in system)


def test_sample_pattern_always_leaves_a_survivor():
    from repro.montecarlo.reliability import _sample_pattern

    processes = ["a", "b", "c", "d"]
    rng = random.Random(0)
    for _ in range(200):
        pattern = _sample_pattern(processes, rng, crash_prob=1.0, disconnect_prob=0.0)
        assert len(pattern.crash_prone) == len(processes) - 1


def test_sample_pattern_survivor_is_uniform_not_positional():
    """Regression: the all-crashed adjustment used to revive the *last* process
    in iteration order, so at crash_prob=1.0 one fixed process survived every
    single sample.  The adjustment must instead pick the survivor uniformly."""
    from repro.montecarlo.reliability import _sample_pattern

    processes = ["a", "b", "c", "d", "e"]
    rng = random.Random(123)
    samples = 1000
    survivor_counts = {p: 0 for p in processes}
    for _ in range(samples):
        pattern = _sample_pattern(processes, rng, crash_prob=1.0, disconnect_prob=0.0)
        (survivor,) = [p for p in processes if p not in pattern.crash_prone]
        survivor_counts[survivor] += 1
    expected = samples / len(processes)
    for process, count in survivor_counts.items():
        # Loose 3-sigma-ish band around the uniform expectation; the old
        # behaviour put all 1000 samples on one process.
        assert 0.6 * expected <= count <= 1.4 * expected, survivor_counts


def test_sample_pattern_non_degenerate_stream_unchanged():
    """The uniform-survivor fix draws extra randomness only in the all-crashed
    branch: with moderate crash probabilities the sampled patterns match the
    plain i.i.d. process."""
    from repro.montecarlo.reliability import _sample_pattern

    processes = ["a", "b", "c", "d"]
    # Seed 0 never draws the all-crashed branch in 50 samples, so the two
    # streams must stay in lockstep throughout.
    rng_a = random.Random(0)
    rng_b = random.Random(0)
    for _ in range(50):
        pattern = _sample_pattern(processes, rng_a, crash_prob=0.3, disconnect_prob=0.2)
        crashed = [p for p in processes if rng_b.random() < 0.3]
        survivors = [p for p in processes if p not in crashed]
        channels = frozenset(
            (src, dst)
            for src in survivors
            for dst in survivors
            if src != dst and rng_b.random() < 0.2
        )
        assert len(crashed) < len(processes)
        assert pattern.crash_prone == frozenset(crashed)
        assert pattern.disconnect_prone == channels


def test_reliability_estimates_ordering(figure1_gqs):
    estimate = estimate_reliability(figure1_gqs, crash_prob=0.1, disconnect_prob=0.3, samples=80, seed=6)
    assert 0.0 <= estimate.gqs_availability <= estimate.classical_availability <= 1.0
    assert estimate.strong_availability <= estimate.gqs_availability


def test_reliability_sweep_and_table(figure1_gqs):
    estimates = reliability_sweep(
        figure1_gqs, disconnect_probs=(0.0, 0.4), crash_prob=0.0, samples=40, seed=7
    )
    assert len(estimates) == 2
    # With no failures at all, availability is total for every notion.
    assert estimates[0].gqs_availability == 1.0
    assert estimates[0].strong_availability == 1.0
    table = reliability_table(estimates)
    assert len(table.rows) == 2
    assert "GQS availability" in table.columns


def test_asymmetric_admissibility_sweep_table():
    from repro.montecarlo import asymmetric_admissibility_sweep

    table = asymmetric_admissibility_sweep(n_values=(4, 5), num_patterns=3, samples=20, seed=1)
    assert len(table.rows) == 2
    for row in table.rows:
        assert row["strong (QS+)"] <= row["generalized (GQS)"] + 1e-9
        assert 0.0 <= row["generalized (GQS)"] <= 1.0


# --------------------------------------------------------------------- #
# Shard merging: mis-routed shards must raise, not corrupt counters
# --------------------------------------------------------------------- #
def test_merge_reliability_rejects_misrouted_shard():
    from repro.engine import ExperimentSpec
    from repro.errors import ReproError
    from repro.montecarlo.reliability import ReliabilityEstimate, _merge_reliability

    spec = ExperimentSpec(
        name="rel", samples=10, params={"crash_prob": 0.1, "disconnect_prob": 0.2}
    )
    good = ReliabilityEstimate(
        crash_prob=0.1, disconnect_prob=0.2, samples=5, gqs_available=3
    )
    merged = _merge_reliability(spec, [good, good])
    assert (merged.samples, merged.gqs_available) == (10, 6)
    stray = ReliabilityEstimate(crash_prob=0.9, disconnect_prob=0.2, samples=5)
    with pytest.raises(ReproError, match="mis-routed reliability shard"):
        _merge_reliability(spec, [good, stray])


def test_merge_admissibility_rejects_misrouted_shard():
    from repro.engine import ExperimentSpec
    from repro.errors import ReproError
    from repro.montecarlo.comparison import AdmissibilityPoint, _merge_admissibility

    spec = ExperimentSpec(
        name="adm", samples=8, params={"disconnect_prob": 0.3, "crash_prob": 0.2}
    )
    good = AdmissibilityPoint(disconnect_prob=0.3, crash_prob=0.2, samples=4, strong=2)
    merged = _merge_admissibility(spec, [good, good])
    assert (merged.samples, merged.strong) == (8, 4)
    stray = AdmissibilityPoint(disconnect_prob=0.4, crash_prob=0.2, samples=4)
    with pytest.raises(ReproError, match="mis-routed admissibility shard"):
        _merge_admissibility(spec, [good, stray])


# --------------------------------------------------------------------- #
# Statistical-shape regression: fixed-seed curves pinned to the values
# the set-based reference engine produced when this suite was written.
# The default (bitset) engine must keep reproducing them exactly.
# --------------------------------------------------------------------- #
def test_pinned_reliability_counters(figure1_gqs):
    estimate = estimate_reliability(
        figure1_gqs, crash_prob=0.1, disconnect_prob=0.3, samples=2000, seed=5
    )
    assert estimate.gqs_available == 1682
    assert estimate.strong_available == 1611
    assert estimate.classical_available == 1891


def test_pinned_admissibility_curve():
    points = admissibility_sweep(
        disconnect_probs=(0.0, 0.2, 0.4),
        n=5,
        num_patterns=3,
        crash_prob=0.2,
        samples=60,
        seed=3,
    )
    assert [(p.generalized, p.strong, p.classical) for p in points] == [
        (59, 59, 59),
        (59, 59, 0),
        (57, 57, 0),
    ]


def test_pinned_asymmetric_curve():
    from repro.montecarlo import asymmetric_admissibility_sweep

    table = asymmetric_admissibility_sweep(n_values=(4, 5), num_patterns=3, samples=50, seed=2)
    assert [
        (row["n"], row["strong (QS+)"], row["generalized (GQS)"]) for row in table.rows
    ] == [(4, 1.0, 1.0), (5, 0.84, 0.86)]


def test_cli_sweep_json_is_hash_seed_independent():
    """`repro sweep --format json` twice under different hash seeds: the
    batched engine's output must be a pure function of the seed (extends the
    PR 4 determinism battery to the Monte Carlo path)."""
    import sys

    from test_discovery_determinism import _run_under_hash_seed

    argv = [
        sys.executable, "-m", "repro", "sweep", "all",
        "--probs", "0.0", "0.3", "--samples", "16", "--n", "4",
        "--patterns", "2", "--seed", "5", "--format", "json",
    ]
    out_a = _run_under_hash_seed("0", argv)
    out_b = _run_under_hash_seed("7777", argv)
    assert out_a == out_b
    assert b'"admissibility"' in out_a and b'"reliability"' in out_a
