"""Tests for the snapshot linearizability checker."""

import pytest

from repro.checkers import check_snapshot_linearizability, scans_totally_ordered
from repro.errors import HistoryError
from repro.history import History, OperationRecord

SEGMENTS = ("a", "b")


def write(pid, value, start, end):
    return OperationRecord(pid, "snapshot_write", value, "ack", start, end, op_id=int(start * 10))


def scan(pid, result, start, end):
    return OperationRecord(pid, "snapshot_scan", None, result, start, end, op_id=int(start * 10) + 1)


def check(*records, segments=SEGMENTS):
    return check_snapshot_linearizability(History(records), segment_ids=segments, initial_value=None)


def test_empty_history_linearizable():
    assert bool(check())


def test_scan_of_initial_state():
    assert bool(check(scan("a", {"a": None, "b": None}, 0, 1)))


def test_write_then_scan():
    assert bool(
        check(
            write("a", "x", 0, 1),
            scan("b", {"a": "x", "b": None}, 2, 3),
        )
    )


def test_scan_missing_completed_write_rejected():
    outcome = check(
        write("a", "x", 0, 1),
        scan("b", {"a": None, "b": None}, 2, 3),
    )
    assert not outcome.is_linearizable


def test_concurrent_write_may_or_may_not_be_seen():
    assert bool(
        check(
            write("a", "x", 0, 10),
            scan("b", {"a": None, "b": None}, 1, 2),
        )
    )
    assert bool(
        check(
            write("a", "x", 0, 10),
            scan("b", {"a": "x", "b": None}, 1, 2),
        )
    )


def test_incomparable_scans_rejected():
    """The classic snapshot violation: two scans each missing the other's write."""
    outcome = check(
        write("a", "x", 0, 10),
        write("b", "y", 0, 10),
        scan("a", {"a": "x", "b": None}, 11, 12),
        scan("b", {"a": None, "b": "y"}, 11, 12),
    )
    assert not outcome.is_linearizable


def test_scan_with_wrong_segment_set_rejected():
    outcome = check(scan("a", {"a": None}, 0, 1))
    assert not outcome.is_linearizable


def test_incomplete_write_optional():
    assert bool(
        check(
            OperationRecord("a", "snapshot_write", "x", None, 0, None, op_id=1),
            scan("b", {"a": None, "b": None}, 5, 6),
        )
    )
    assert bool(
        check(
            OperationRecord("a", "snapshot_write", "x", None, 0, None, op_id=1),
            scan("b", {"a": "x", "b": None}, 5, 6),
        )
    )


def test_write_by_unknown_segment_owner_rejected():
    with pytest.raises(HistoryError):
        check(write("z", "x", 0, 1), scan("a", {"a": None, "b": None}, 2, 3))


def test_wrong_operation_kind_rejected():
    with pytest.raises(HistoryError):
        check_snapshot_linearizability(
            History([OperationRecord("a", "read", None, None, 0, 1)]),
            segment_ids=SEGMENTS,
        )


def test_scans_totally_ordered_helper():
    ordered = History(
        [
            scan("a", {"a": "x", "b": None}, 0, 1),
            scan("b", {"a": "x", "b": "y"}, 2, 3),
        ]
    )
    incomparable = History(
        [
            scan("a", {"a": "x", "b": None}, 0, 1),
            scan("b", {"a": None, "b": "y"}, 2, 3),
        ]
    )
    assert scans_totally_ordered(ordered)
    assert not scans_totally_ordered(incomparable)
