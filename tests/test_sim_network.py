"""Tests for the simulated network (:mod:`repro.sim.network`)."""

import pytest

from repro.errors import SimulationError
from repro.failures import FailurePattern
from repro.graph import DiGraph
from repro.sim import FixedDelay, Network, Process


class Recorder(Process):
    """A process that records every message it receives."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


def make_network(pids=("a", "b", "c"), graph=None):
    network = Network(graph=graph, delay_model=FixedDelay(1.0))
    processes = {pid: Recorder(pid, network) for pid in pids}
    return network, processes


def test_send_delivers_after_delay():
    network, procs = make_network()
    network.send("a", "b", "hello")
    assert procs["b"].received == []
    network.run()
    assert procs["b"].received == [("a", "hello")]
    assert network.now == pytest.approx(1.0)


def test_send_to_self_is_immediate():
    network, procs = make_network()
    network.send("a", "a", "note")
    assert procs["a"].received == [("a", "note")]


def test_broadcast_reaches_everyone():
    network, procs = make_network()
    network.broadcast("a", "ping")
    network.run()
    assert ("a", "ping") in procs["a"].received
    assert ("a", "ping") in procs["b"].received
    assert ("a", "ping") in procs["c"].received


def test_broadcast_exclude_self():
    network, procs = make_network()
    network.broadcast("a", "ping", include_self=False)
    network.run()
    assert procs["a"].received == []
    assert procs["b"].received


def test_disconnected_channel_drops_messages():
    network, procs = make_network()
    network.disconnect_channel(("a", "b"))
    network.send("a", "b", "lost")
    network.send("b", "a", "kept")
    network.run()
    assert procs["b"].received == []
    assert procs["a"].received == [("b", "kept")]
    assert network.stats.messages_dropped_channel == 1


def test_reconnect_channel():
    network, procs = make_network()
    network.disconnect_channel(("a", "b"))
    assert network.is_disconnected(("a", "b"))
    network.reconnect_channel(("a", "b"))
    network.send("a", "b", "back")
    network.run()
    assert procs["b"].received == [("a", "back")]


def test_crashed_process_neither_sends_nor_receives():
    network, procs = make_network()
    network.crash_process("b")
    network.send("a", "b", "to-crashed")
    network.send("b", "a", "from-crashed")
    network.run()
    assert procs["b"].received == []
    assert procs["a"].received == []
    assert procs["b"].crashed
    assert network.is_crashed("b")
    assert network.correct_process_ids() == ["a", "c"]


def test_crash_unknown_process_rejected():
    network, _ = make_network()
    with pytest.raises(SimulationError):
        network.crash_process("zz")


def test_send_between_unknown_processes_rejected():
    network, _ = make_network()
    with pytest.raises(SimulationError):
        network.send("a", "zz", "x")


def test_duplicate_registration_rejected():
    network, _ = make_network()
    with pytest.raises(SimulationError):
        Recorder("a", network)


def test_restricted_graph_blocks_missing_channels():
    graph = DiGraph(vertices=["a", "b"], edges=[("a", "b")])
    network, procs = make_network(pids=("a", "b"), graph=graph)
    network.send("b", "a", "nope")
    network.send("a", "b", "yes")
    network.run()
    assert procs["a"].received == []
    assert procs["b"].received == [("a", "yes")]


def test_apply_failure_pattern_disconnects_and_crashes():
    network, procs = make_network(pids=("a", "b", "c", "d"))
    pattern = FailurePattern(["d"], [("a", "c")], name="f")
    network.apply_failure_pattern(pattern)
    assert network.is_crashed("d")
    assert network.is_disconnected(("a", "c"))
    assert network.is_disconnected(("a", "d"))
    assert network.is_disconnected(("d", "a"))
    assert not network.is_disconnected(("c", "a"))


def test_apply_failure_pattern_without_crashing():
    network, procs = make_network(pids=("a", "b"))
    pattern = FailurePattern(["b"])
    network.apply_failure_pattern(pattern, crash_processes=False)
    assert not network.is_crashed("b")
    # Channels incident to the crash-prone process are still cut.
    assert network.is_disconnected(("a", "b"))


def test_apply_failure_pattern_at_time():
    network, procs = make_network(pids=("a", "b"))
    pattern = FailurePattern([], [("a", "b")])
    network.apply_failure_pattern(pattern, at_time=5.0)
    network.send("a", "b", "early")
    network.run_until(3.0)
    assert procs["b"].received == [("a", "early")]
    network.run_until(6.0)
    network.send("a", "b", "late")
    network.run()
    assert procs["b"].received == [("a", "early")]


def test_stats_counters():
    network, _ = make_network()
    network.broadcast("a", "x")
    network.run()
    assert network.stats.messages_sent == 3
    assert network.stats.messages_delivered == 3
    assert network.stats.per_process_sent["a"] == 3
