"""Tests for the declarative scenario subsystem (:mod:`repro.scenarios`)."""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.scenarios import (
    DelaySpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    all_scenarios,
    build_quorum_system,
    build_topology,
    catalogue_markdown,
    get_scenario,
    load_scenario,
    register_scenario,
    resolve_pattern,
    run_scenario,
    run_scenario_once,
    save_scenario,
    scenario_names,
    sweep_scenarios,
    sweep_table,
)
from repro.serialization import fail_prone_system_to_dict
from repro.failures import ring_unidirectional_system


EXPECTED_NAMES = [
    "geo-replication",
    "unidirectional-ring",
    "adversarial-partition",
    "churn-at-gst",
    "partial-synchrony-stress",
    "heavy-contention-register",
    "lattice-fan-in",
    "zoned-threshold",
    "multi-region-blackout",
    "paxos-baseline",
]


# ---------------------------------------------------------------------- #
# Spec serialization
# ---------------------------------------------------------------------- #
def test_every_registered_scenario_round_trips_through_json():
    for scenario in all_scenarios():
        text = json.dumps(scenario.to_dict())
        assert ScenarioSpec.from_dict(json.loads(text)) == scenario


def test_scenario_file_round_trip(tmp_path):
    scenario = get_scenario("unidirectional-ring")
    path = str(tmp_path / "scenario.json")
    save_scenario(scenario, path)
    assert load_scenario(path) == scenario


def test_explicit_topology_round_trips_and_builds():
    system = ring_unidirectional_system(4)
    scenario = ScenarioSpec(
        name="inline-ring",
        description="ring described inline",
        paper_section="S1",
        topology=TopologySpec("explicit", {"system": fail_prone_system_to_dict(system)}),
        failure=FailureSpec(pattern="f1"),
        delay=DelaySpec("uniform", {"min_delay": 0.4, "max_delay": 1.6}),
        protocol=ProtocolSpec("register"),
        workload=WorkloadSpec(ops_per_process=1),
    )
    again = ScenarioSpec.from_json(scenario.to_json())
    assert again == scenario
    built = build_topology(again)
    assert built.processes == system.processes
    assert [f.name for f in built.patterns] == [f.name for f in system.patterns]
    row = run_scenario_once(again, seed=0)
    assert row["completed"] and row["safe"]


def test_spec_validation_rejects_unknown_kinds():
    with pytest.raises(ReproError):
        TopologySpec("no-such-topology")
    with pytest.raises(ReproError):
        DelaySpec("no-such-delay")
    with pytest.raises(ReproError):
        ProtocolSpec("no-such-protocol")
    with pytest.raises(ReproError):
        ProtocolSpec("register", {"view_duration": 5.0})  # consensus-only knob
    with pytest.raises(ReproError):
        WorkloadSpec(ops_per_process=0)


def test_random_topology_requires_a_pinned_seed():
    with pytest.raises(ReproError, match="requires an explicit integer 'seed'"):
        TopologySpec("random", {"n": 4})
    # with a pinned seed the sampled system is reproducible and allowed
    spec = TopologySpec("random", {"n": 4, "num_patterns": 2, "seed": 3})
    assert spec.params["seed"] == 3


def test_resolve_pattern_rejects_unknown_names():
    scenario = get_scenario("unidirectional-ring")
    bad = ScenarioSpec.from_dict(
        dict(scenario.to_dict(), failure={"pattern": "not-a-pattern", "at_time": None})
    )
    with pytest.raises(ReproError, match="unknown pattern"):
        resolve_pattern(bad, build_topology(bad))


# ---------------------------------------------------------------------- #
# Registry completeness
# ---------------------------------------------------------------------- #
def test_registry_contains_the_documented_catalogue():
    assert scenario_names() == EXPECTED_NAMES


def test_every_registered_scenario_builds_and_completes_a_smoke_run():
    """Every catalogue entry must materialize and survive one seeded run."""
    for name in scenario_names():
        scenario = get_scenario(name)
        system = build_topology(scenario)
        build_quorum_system(scenario, system)
        resolve_pattern(scenario, system)
        row = run_scenario_once(scenario, seed=0)
        assert row["completed"], name
        assert row["safe"], name
        assert row["operations"] > 0, name


def test_register_scenario_rejects_duplicates_and_supports_replace():
    scenario = get_scenario("unidirectional-ring")
    with pytest.raises(ReproError, match="already registered"):
        register_scenario(scenario)
    # replace=True is idempotent and keeps the registry unchanged
    register_scenario(scenario, replace=True)
    assert scenario_names() == EXPECTED_NAMES


# ---------------------------------------------------------------------- #
# Engine execution: jobs-independence
# ---------------------------------------------------------------------- #
def test_run_scenario_results_are_independent_of_jobs():
    for name in scenario_names():
        serial = run_scenario(name, runs=2, seed=11, jobs=1)
        parallel = run_scenario(name, runs=2, seed=11, jobs=2)
        assert serial.run_table().to_text() == parallel.run_table().to_text(), name
        assert serial.to_dict() == parallel.to_dict(), name


def test_sweep_scenarios_shares_one_pool_and_matches_per_scenario_runs():
    names = ["unidirectional-ring", "paxos-baseline"]
    swept = sweep_scenarios(names, runs=2, seed=5, jobs=2)
    assert [r.scenario.name for r in swept] == names
    for result in swept:
        alone = run_scenario(result.scenario, runs=2, seed=5, jobs=1)
        assert alone.rows == result.rows
    assert "paxos-baseline" in sweep_table(swept).to_text()


def test_run_scenario_seed_changes_the_sample_streams():
    a = run_scenario("unidirectional-ring", runs=2, seed=0)
    b = run_scenario("unidirectional-ring", runs=2, seed=1)
    assert a.rows != b.rows


def test_run_scenario_rejects_zero_runs():
    with pytest.raises(ReproError, match="at least 1 run"):
        run_scenario("unidirectional-ring", runs=0)


def test_explored_states_is_surfaced_in_rows_summary_and_table():
    """Regression: the linearizability checker's explored_states used to be
    dropped on the floor by the scenario runner — verification cost must be
    observable in every surface (per-run rows, aggregate summary, table)."""
    result = run_scenario("unidirectional-ring", runs=2, seed=0)
    for row in result.rows:
        assert row["explored_states"] > 0  # a register run always searches
    assert result.explored_states == sum(row["explored_states"] for row in result.rows)
    assert result.summary()["explored_states"] == result.explored_states
    assert "explored_states" in result.run_table().to_text()


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def test_cli_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    output = capsys.readouterr().out
    for name in EXPECTED_NAMES:
        assert name in output


def test_cli_scenario_show_json_round_trips(capsys):
    assert main(["scenario", "show", "churn-at-gst", "--format", "json"]) == 0
    output = capsys.readouterr().out
    assert ScenarioSpec.from_json(output) == get_scenario("churn-at-gst")


def test_cli_scenario_run_jobs_do_not_change_results(capsys):
    for name in scenario_names():
        argv = ["scenario", "run", name, "--runs", "2", "--seed", "7"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel, name


def test_cli_scenario_run_json_output(capsys):
    assert main(
        ["scenario", "run", "paxos-baseline", "--runs", "1", "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"]["name"] == "paxos-baseline"
    assert payload["summary"]["all_completed"] is True
    assert len(payload["rows"]) == 1


def test_cli_scenario_sweep_subset(capsys):
    status = main(
        ["scenario", "sweep", "unidirectional-ring", "lattice-fan-in", "--runs", "1", "--jobs", "2"]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "unidirectional-ring" in output
    assert "lattice-fan-in" in output
    assert "geo-replication" not in output


def test_cli_scenario_unknown_name(capsys):
    assert main(["scenario", "run", "no-such-scenario"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_scenario_run_rejects_non_positive_runs(capsys):
    with pytest.raises(SystemExit):
        main(["scenario", "run", "unidirectional-ring", "--runs", "0"])
    assert "runs must be at least 1" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# Docs consistency
# ---------------------------------------------------------------------- #
DOCS_PATH = os.path.join(os.path.dirname(__file__), "..", "docs", "scenarios.md")
TABLE_BEGIN = "<!-- scenario-table:begin -->"
TABLE_END = "<!-- scenario-table:end -->"


def test_docs_scenario_catalogue_matches_registry():
    """The table in docs/scenarios.md must equal the generated catalogue.

    Regenerate with:  python -m repro scenario list --format markdown
    """
    with open(DOCS_PATH, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert TABLE_BEGIN in text and TABLE_END in text
    embedded = text.split(TABLE_BEGIN)[1].split(TABLE_END)[0].strip()
    assert embedded == catalogue_markdown().strip()


def test_cli_scenario_list_markdown_matches_registry(capsys):
    assert main(["scenario", "list", "--format", "markdown"]) == 0
    assert capsys.readouterr().out.strip() == catalogue_markdown().strip()
