"""End-to-end integration tests tying the code back to the paper's claims.

Each test states which paper claim it exercises; together they form the
"does the reproduction actually reproduce the paper" gate.
"""

import pytest

from repro.analysis import (
    figure1_fail_prone_system,
    figure1_modified_fail_prone_system,
    figure1_quorum_system,
)
from repro.checkers import (
    check_consensus,
    check_lattice_agreement,
    check_register_linearizability,
)
from repro.experiments import (
    run_consensus_workload,
    run_lattice_workload,
    run_paxos_baseline_workload,
    run_register_workload,
)
from repro.failures import ring_unidirectional_system
from repro.quorums import discover_gqs, find_gqs, gqs_exists, strong_system_exists


def test_theorem1_register_wait_freedom_inside_uf_figure1():
    """Theorem 1 (registers): wait-freedom inside U_f plus linearizability, per pattern."""
    gqs = figure1_quorum_system()
    for index, pattern in enumerate(gqs.fail_prone.patterns):
        result = run_register_workload(gqs, pattern=pattern, ops_per_process=2, seed=100 + index)
        assert result.completed
        assert bool(check_register_linearizability(result.history, initial_value=0))


def test_theorem1_lattice_agreement_inside_uf():
    """Theorem 1 (lattice agreement): termination inside U_f and the three properties."""
    gqs = figure1_quorum_system()
    pattern = gqs.fail_prone.patterns[2]
    result = run_lattice_workload(gqs, pattern=pattern, seed=42)
    assert result.completed
    assert check_lattice_agreement(result.history).ok


def test_theorem2_example9_no_gqs_for_modified_system():
    """Theorem 2 via Example 9: F' admits no GQS, hence no implementation exists."""
    assert not gqs_exists(figure1_modified_fail_prone_system())


def test_theorem5_consensus_under_partial_synchrony():
    """Theorem 5: consensus decides inside U_f under partial synchrony, for each pattern."""
    gqs = figure1_quorum_system()
    for index, pattern in enumerate(gqs.fail_prone.patterns):
        result = run_consensus_workload(
            gqs, pattern=pattern, gst=25.0, seed=200 + index, max_time=4_000.0
        )
        component = gqs.termination_component(pattern)
        verdict = check_consensus(result.history, required_to_terminate=component)
        assert result.completed and verdict.ok


def test_section1_gqs_weaker_than_strongly_connected_quorums():
    """§1: the Figure 1 system admits a GQS but no strongly connected quorum system."""
    system = figure1_fail_prone_system()
    assert gqs_exists(system)
    assert not strong_system_exists(system)


def test_classical_request_response_paxos_does_not_help():
    """The motivation for the new quorum access functions: request/response Paxos
    cannot decide under f1 even though the GQS consensus can."""
    gqs = figure1_quorum_system()
    f1 = gqs.fail_prone.patterns[0]
    baseline = run_paxos_baseline_workload(gqs, pattern=f1, max_time=700.0, seed=3)
    assert not baseline.completed


def test_ring_generalisation_scales_beyond_four_processes():
    """The Figure 1 construction generalises: the n=5 ring admits a GQS whose
    register protocol is live inside U_f."""
    system = ring_unidirectional_system(5)
    result = discover_gqs(system)
    assert result.exists
    gqs = result.quorum_system
    pattern = system.patterns[0]
    run = run_register_workload(gqs, pattern=pattern, ops_per_process=1, seed=11)
    assert run.completed
    assert bool(check_register_linearizability(run.history, initial_value=0))


def test_discovered_gqs_supports_protocols_on_random_admitting_system():
    """Discovery output is directly usable by the protocols (E8 in miniature)."""
    from repro.failures import adversarial_partition_system

    system = adversarial_partition_system(4)
    gqs = find_gqs(system)
    pattern = system.patterns[1]
    run = run_register_workload(gqs, pattern=pattern, ops_per_process=1, seed=21)
    assert run.completed
    assert bool(check_register_linearizability(run.history, initial_value=0))
