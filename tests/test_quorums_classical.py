"""Tests for classical quorum systems (:mod:`repro.quorums.classical`)."""

import pytest

from repro.errors import (
    InvalidQuorumSystemError,
    QuorumAvailabilityError,
    QuorumConsistencyError,
)
from repro.failures import FailProneSystem, FailurePattern
from repro.quorums import (
    QuorumSystem,
    grid_quorum_system,
    majority_quorum_system,
    minimal_quorums,
    quorum_load,
    threshold_quorum_system,
)


def crash_only_system(processes, k):
    return FailProneSystem.crash_threshold(processes, k)


def test_majority_quorum_system_is_valid():
    system = majority_quorum_system(["a", "b", "c"])
    assert system.is_valid()
    assert all(len(q) == 2 for q in system.read_quorums)
    assert system.read_quorums == system.write_quorums


def test_threshold_quorum_system_example6():
    system = threshold_quorum_system(["p{}".format(i) for i in range(5)], 1)
    assert system.is_valid()
    assert all(len(r) == 4 for r in system.read_quorums)
    assert all(len(w) == 2 for w in system.write_quorums)


def test_threshold_rejects_k_too_large():
    with pytest.raises(InvalidQuorumSystemError):
        threshold_quorum_system(["a", "b", "c"], 2)


def test_threshold_k_zero():
    system = threshold_quorum_system(["a", "b"], 0)
    assert system.is_valid()
    assert all(len(w) == 1 for w in system.write_quorums)


def test_consistency_violation_detected():
    fail_prone = crash_only_system(["a", "b", "c", "d"], 0)
    with pytest.raises(QuorumConsistencyError):
        QuorumSystem(fail_prone, [{"a", "b"}], [{"c", "d"}])


def test_availability_violation_detected():
    fail_prone = crash_only_system(["a", "b", "c"], 1)
    # Read quorum {a, b, c} can never be all-correct when one process crashes
    # ... it can actually (only maximal patterns with exactly 1 crash): not available.
    with pytest.raises(QuorumAvailabilityError):
        QuorumSystem(fail_prone, [{"a", "b", "c"}], [{"a"}, {"b"}, {"c"}])


def test_validate_false_defers_checking():
    fail_prone = crash_only_system(["a", "b", "c", "d"], 0)
    system = QuorumSystem(fail_prone, [{"a", "b"}], [{"c", "d"}], validate=False)
    assert not system.is_valid()
    assert len(system.consistency_violations()) == 1


def test_channel_failures_rejected_for_classical_systems():
    fail_prone = FailProneSystem(["a", "b"], [FailurePattern([], [("a", "b")])])
    with pytest.raises(InvalidQuorumSystemError):
        QuorumSystem(fail_prone, [{"a"}], [{"a"}])


def test_unknown_process_in_quorum_rejected():
    fail_prone = crash_only_system(["a", "b", "c"], 0)
    with pytest.raises(InvalidQuorumSystemError):
        QuorumSystem(fail_prone, [{"a", "z"}], [{"a"}])


def test_empty_quorum_rejected():
    fail_prone = crash_only_system(["a", "b", "c"], 0)
    with pytest.raises(InvalidQuorumSystemError):
        QuorumSystem(fail_prone, [set()], [{"a"}])


def test_available_quorums_returns_correct_pair():
    system = threshold_quorum_system(["a", "b", "c"], 1)
    pattern = FailurePattern.crash_only(["c"])
    pair = system.available_quorums(pattern)
    assert pair is not None
    read, write = pair
    assert "c" not in read and "c" not in write


def test_grid_quorum_system():
    system = grid_quorum_system(2, 3)
    assert system.is_consistent()
    assert len(system.read_quorums) == 3  # columns
    assert len(system.write_quorums) == 2  # rows
    assert system.is_valid()


def test_grid_rejects_bad_dimensions():
    with pytest.raises(InvalidQuorumSystemError):
        grid_quorum_system(0, 3)


def test_minimal_quorums():
    family = [frozenset({"a"}), frozenset({"a", "b"}), frozenset({"b", "c"})]
    minimal = minimal_quorums(family)
    assert frozenset({"a"}) in minimal
    assert frozenset({"a", "b"}) not in minimal
    assert frozenset({"b", "c"}) in minimal


def test_quorum_load_majorities():
    system = majority_quorum_system(["a", "b", "c"])
    load = quorum_load(system)
    # Each process appears in 2 of the 3 majorities (read and write families equal).
    assert load == pytest.approx(2.0 / 3.0)


def test_duplicate_quorums_are_deduplicated():
    fail_prone = crash_only_system(["a", "b"], 0)
    system = QuorumSystem(fail_prone, [{"a"}, {"a"}], [{"a", "b"}])
    assert len(system.read_quorums) == 1
