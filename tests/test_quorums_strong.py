"""Tests for the QS+ baseline (:mod:`repro.quorums.strong`)."""

import pytest

from repro.errors import QuorumAvailabilityError, QuorumConsistencyError
from repro.failures import FailProneSystem, FailurePattern
from repro.quorums import StrongQuorumSystem, strong_system_exists, threshold_quorum_system


def test_crash_only_threshold_admits_strong_system():
    system = FailProneSystem.crash_threshold(["a", "b", "c"], 1)
    assert strong_system_exists(system)


def test_figure1_admits_no_strong_system(figure1_system):
    """The Figure 1 system is the paper's witness that GQS is strictly weaker than QS+."""
    assert not strong_system_exists(figure1_system)


def test_modified_figure1_admits_no_strong_system(figure1_modified_system):
    assert not strong_system_exists(figure1_modified_system)


def test_strong_system_validation_happy_path():
    classical = threshold_quorum_system(["a", "b", "c"], 1)
    strong = StrongQuorumSystem(
        classical.fail_prone, classical.read_quorums, classical.write_quorums
    )
    assert strong.is_valid()


def test_strong_system_consistency_violation():
    system = FailProneSystem(["a", "b", "c", "d"], [FailurePattern()])
    with pytest.raises(QuorumConsistencyError):
        StrongQuorumSystem(system, [{"a", "b"}], [{"c", "d"}])


def test_strong_system_availability_requires_strong_connectivity(figure1_system):
    """The Figure 1 quorums are a valid GQS but fail strong Availability under f1."""
    read_quorums = [{"a", "c"}, {"b", "d"}]
    write_quorums = [{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}]
    with pytest.raises(QuorumAvailabilityError):
        StrongQuorumSystem(figure1_system, read_quorums, write_quorums)


def test_strong_availability_per_pattern():
    pattern = FailurePattern([], [("a", "b")], name="a-to-b-down")
    system = FailProneSystem(["a", "b"], [pattern])
    strong = StrongQuorumSystem(system, [{"a"}, {"b"}], [{"a"}, {"b"}], validate=False)
    # Individually {a} and {b} are fine but {a} ∪ {b} spanning pairs are not needed:
    # Availability holds because the pair ({a}, {a}) is strongly connected.
    assert strong.is_available(pattern)


def test_strong_system_exists_requires_some_component():
    # Both processes isolated in both directions: residual SCCs are singletons,
    # and the two patterns force two disjoint singletons -> no QS+.
    p1 = FailurePattern(["a"], name="crash-a")
    p2 = FailurePattern(["b"], name="crash-b")
    system = FailProneSystem(["a", "b"], [p1, p2])
    assert not strong_system_exists(system)


def test_strong_system_exists_with_overlapping_components():
    p1 = FailurePattern(["a"], name="crash-a")
    p2 = FailurePattern(["c"], name="crash-c")
    system = FailProneSystem(["a", "b", "c"], [p1, p2])
    assert strong_system_exists(system)
