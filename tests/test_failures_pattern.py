"""Tests for failure patterns (:mod:`repro.failures.pattern`)."""

import pytest

from repro.errors import InvalidFailurePatternError
from repro.failures import NO_FAILURES, FailurePattern
from repro.graph import DiGraph


def test_basic_pattern_accessors():
    f = FailurePattern(["d"], [("a", "c"), ("b", "c")], name="f1")
    assert f.crash_prone == frozenset({"d"})
    assert ("a", "c") in f.disconnect_prone
    assert f.name == "f1"


def test_channel_incident_to_crash_prone_process_rejected():
    with pytest.raises(InvalidFailurePatternError):
        FailurePattern(["a"], [("a", "b")])
    with pytest.raises(InvalidFailurePatternError):
        FailurePattern(["b"], [("a", "b")])


def test_self_loop_channel_rejected():
    with pytest.raises(InvalidFailurePatternError):
        FailurePattern([], [("a", "a")])


def test_correct_processes():
    f = FailurePattern(["b"])
    assert f.correct_processes(["a", "b", "c"]) == frozenset({"a", "c"})


def test_faulty_channel_includes_crash_incident_channels():
    f = FailurePattern(["b"], [("a", "c")])
    assert f.is_faulty_channel(("a", "b"))
    assert f.is_faulty_channel(("b", "a"))
    assert f.is_faulty_channel(("a", "c"))
    assert not f.is_faulty_channel(("c", "a"))


def test_residual_graph_removes_failures():
    graph = DiGraph.complete(["a", "b", "c", "d"])
    f = FailurePattern(["d"], [("a", "c")])
    residual = f.residual_graph(graph)
    assert not residual.has_vertex("d")
    assert not residual.has_edge("a", "c")
    assert residual.has_edge("c", "a")


def test_faulty_and_correct_channels_partition_edges():
    graph = DiGraph.complete(["a", "b", "c"])
    f = FailurePattern(["c"], [("a", "b")])
    faulty = f.faulty_channels(graph)
    correct = f.correct_channels(graph)
    assert faulty | correct == graph.edge_set()
    assert not (faulty & correct)
    assert ("b", "a") in correct


def test_subsumption():
    small = FailurePattern(["a"])
    bigger = FailurePattern(["a", "b"])
    with_channels = FailurePattern(["a"], [("b", "c")])
    assert small.is_subsumed_by(bigger)
    assert not bigger.is_subsumed_by(small)
    assert small.is_subsumed_by(with_channels)
    # Channel (b, c) failing is covered by b crashing in `bigger`.
    assert with_channels.is_subsumed_by(bigger)


def test_union_merges_failures_and_drops_covered_channels():
    first = FailurePattern(["a"], [("b", "c")])
    second = FailurePattern(["c"])
    merged = first.union(second)
    assert merged.crash_prone == frozenset({"a", "c"})
    # (b, c) is incident to the now-crash-prone c, so it must not be listed.
    assert ("b", "c") not in merged.disconnect_prone


def test_equality_and_hash_ignore_name():
    first = FailurePattern(["a"], [("b", "c")], name="x")
    second = FailurePattern(["a"], [("b", "c")], name="y")
    assert first == second
    assert hash(first) == hash(second)


def test_factories():
    assert FailurePattern.crash_only(["a"]).disconnect_prone == frozenset()
    assert NO_FAILURES.crash_prone == frozenset()
    assert NO_FAILURES.disconnect_prone == frozenset()


def test_repr_contains_name_and_members():
    f = FailurePattern(["a"], [("b", "c")], name="f9")
    text = repr(f)
    assert "f9" in text and "a" in text and "b" in text
