"""Tests for the typed facade (:mod:`repro.api`)."""

import pytest

from repro import api
from repro.errors import NoQuorumSystemExistsError, ReproError
from repro.scenarios import get_scenario


# ---------------------------------------------------------------------- #
# System resolution and the quorum-decision toolbox
# ---------------------------------------------------------------------- #
def test_resolve_system_builtin_and_spec(tmp_path):
    system = api.resolve_system(builtin="ring-5")
    assert len(system.processes) == 5
    path = tmp_path / "system.json"
    path.write_text(
        '{"processes": ["a", "b", "c"], "patterns": [{"name": "f", "crash": ["c"], '
        '"disconnect": []}]}'
    )
    loaded = api.resolve_system(spec=str(path))
    assert sorted(loaded.processes) == ["a", "b", "c"]


def test_discovery_report_payload_matches_cli_json():
    import json
    import os

    report = api.discovery_report(api.resolve_system(builtin="figure1"))
    golden_path = os.path.join(
        os.path.dirname(__file__), "golden", "quorums_discover_figure1.json"
    )
    with open(golden_path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert report.to_dict() == golden
    assert report.exists is True
    assert all(row["candidates"] >= 1 for row in report.rows)


def test_classify_report():
    report = api.classify(api.resolve_system(builtin="figure1"))
    assert report.admits == {"classical": False, "strong": False, "generalized": True}
    payload = report.to_dict()
    assert payload["system"]["num_processes"] == len(report.system.processes)


def test_repair_outcome_json_projection():
    outcome = api.repair(api.resolve_system(builtin="figure1-modified"), max_channels=1)
    assert outcome.report.repairable
    payload = outcome.to_dict()
    assert payload["repairable"] is True
    assert payload["suggestions"] == outcome.suggestions
    assert [["a", "b"]] in outcome.suggestions


# ---------------------------------------------------------------------- #
# simulate
# ---------------------------------------------------------------------- #
def test_simulate_single_run_report():
    system = api.resolve_system(builtin="figure1")
    report = api.simulate(system, protocol="register", pattern="f1", ops=1, seed=3)
    assert report.runs == 1
    assert report.ok and report.exit_ok
    assert report.safety_label(True) == "linearizable=True"
    assert report.outcomes[0]["invokers"]


def test_simulate_batch_independent_of_jobs():
    system = api.resolve_system(builtin="figure1")
    serial = api.simulate(system, protocol="register", pattern="f1", ops=1, seed=3, runs=3, jobs=1)
    parallel = api.simulate(system, protocol="register", pattern="f1", ops=1, seed=3, runs=3, jobs=2)
    assert serial.outcomes == parallel.outcomes
    assert serial.total_messages == parallel.total_messages
    assert serial.runs == parallel.runs == 3


def test_simulate_paxos_never_gates_on_safety():
    system = api.resolve_system(builtin="minority-5")
    report = api.simulate(system, protocol="paxos", ops=1, seed=0)
    assert report.gates_on_safety is False
    assert report.exit_ok is True
    assert report.safety_label(False) == "baseline (no safety check applied)"


def test_simulate_rejects_unknown_pattern_and_protocol():
    system = api.resolve_system(builtin="figure1")
    with pytest.raises(ReproError, match="unknown pattern 'nope'"):
        api.simulate(system, pattern="nope")
    with pytest.raises(ReproError, match="unknown protocol kind 'registr'.*did you mean 'register'"):
        api.simulate(system, protocol="registr")


def test_simulate_intolerable_system_raises_typed_error():
    system = api.resolve_system(builtin="figure1-modified")
    with pytest.raises(NoQuorumSystemExistsError, match="nothing to simulate"):
        api.simulate(system)


# ---------------------------------------------------------------------- #
# scenarios
# ---------------------------------------------------------------------- #
def test_run_scenario_accepts_name_or_spec():
    by_name = api.run_scenario("unidirectional-ring", runs=2, seed=7)
    by_spec = api.run_scenario(get_scenario("unidirectional-ring"), runs=2, seed=7)
    assert by_name.to_dict() == by_spec.to_dict()


def test_run_scenario_unknown_name_gets_registry_error():
    with pytest.raises(ReproError, match="unknown scenario 'ringg'"):
        api.run_scenario("ringg")


def test_sweep_scenarios_subset():
    results = api.sweep_scenarios(["unidirectional-ring"], runs=1, seed=7)
    assert [r.scenario.name for r in results] == ["unidirectional-ring"]
    assert results[0].ok


# ---------------------------------------------------------------------- #
# Monte Carlo sweep and trace checking
# ---------------------------------------------------------------------- #
def test_sweep_kinds_and_validation():
    outcome = api.sweep(kind="admissibility", probs=(0.0,), n=4, patterns=2, samples=4, seed=1)
    assert outcome.admissibility is not None
    assert outcome.reliability is None
    assert "generalized (GQS)" in outcome.admissibility_text()
    with pytest.raises(ReproError, match="unknown sweep kind 'both'"):
        api.sweep(kind="both")


def test_check_traces_round_trip(tmp_path):
    directory = str(tmp_path / "traces")
    api.run_scenario("unidirectional-ring", runs=2, seed=7, record_traces=directory)
    report = api.check_traces(directory)
    assert report.ok
    assert report.traces == 2
    with pytest.raises(ReproError, match="unknown checker 'wing-gog'.*did you mean 'wing-gong'"):
        api.check_traces(directory, checker="wing-gog")


def test_run_examples_all_hold():
    outcomes = api.run_examples()
    assert len(outcomes) == 6
    assert all(outcome.holds for outcome in outcomes)


def test_protocol_safety_label_dispatch():
    assert api.protocol_safety_label("register", True) == "linearizable=True"
    assert api.protocol_safety_label("consensus", False) == "agreement+validity+termination=False"
    with pytest.raises(ReproError, match="unknown protocol kind"):
        api.protocol_safety_label("nope", True)
