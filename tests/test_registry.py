"""Tests for the central extension registry (:mod:`repro.registry`)."""

import pytest

from repro.errors import ReproError
from repro.registry import (
    CHECKERS,
    DELAY_MODELS,
    PROTOCOLS,
    SCENARIOS,
    TOPOLOGIES,
    Descriptor,
    Registry,
    RegistryView,
)
from repro.registry.core import set_current_origin, validate_params


def _descriptor(name, kind="widget", **kwargs):
    return Descriptor(name=name, kind=kind, builder=lambda: name, **kwargs)


# ---------------------------------------------------------------------- #
# Core behaviour (on locally constructed registries)
# ---------------------------------------------------------------------- #
def test_registration_preserves_order_and_mapping_protocol():
    registry = Registry("widget", noun="widget kind")
    for name in ("zeta", "alpha", "mid"):
        registry.register(_descriptor(name))
    assert registry.names() == ["zeta", "alpha", "mid"]
    assert list(registry) == ["zeta", "alpha", "mid"]
    assert len(registry) == 3
    assert "alpha" in registry
    assert registry["alpha"].name == "alpha"
    assert [d.name for d in registry.descriptors()] == ["zeta", "alpha", "mid"]


def test_duplicate_registration_rejected_unless_replace():
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("w"))
    with pytest.raises(ReproError, match="widget kind 'w' is already registered"):
        registry.register(_descriptor("w"))
    replacement = _descriptor("w", doc="v2")
    registry.register(replacement, replace=True)
    assert registry["w"].doc == "v2"


def test_kind_mismatch_rejected():
    registry = Registry("widget", noun="widget kind")
    with pytest.raises(ReproError, match="has kind 'gadget', expected 'widget'"):
        registry.register(_descriptor("w", kind="gadget"))


def test_unknown_name_error_lists_sorted_candidates_with_suggestion():
    registry = Registry("widget", noun="widget kind")
    for name in ("zeta", "alpha", "mid"):
        registry.register(_descriptor(name))
    with pytest.raises(ReproError) as excinfo:
        registry.get("alpah")
    message = str(excinfo.value)
    assert message == (
        "unknown widget kind 'alpah'; expected one of ['alpha', 'mid', 'zeta'] "
        "(did you mean 'alpha'?)"
    )


def test_unknown_name_error_without_close_match_has_no_suggestion():
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("alpha"))
    message = str(registry.unknown_name_error("qqqqq"))
    assert message == "unknown widget kind 'qqqqq'; expected one of ['alpha']"


def test_unknown_name_error_extra_candidates():
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("alpha"))
    message = str(registry.unknown_name_error("beta", extra=("explicit",)))
    assert "['alpha', 'explicit']" in message


def test_mapping_contract_on_missing_names():
    """Missing names follow the Mapping protocol: `in` is False, KeyError from
    [], Mapping-style .get(default) — only the rich .get() raises ReproError."""
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("alpha"))
    assert "nope" not in registry
    with pytest.raises(KeyError):
        registry["nope"]
    assert registry.get("nope", None) is None
    assert registry.get("nope", "fallback") == "fallback"
    with pytest.raises(ReproError, match="unknown widget kind 'nope'"):
        registry.get("nope")
    view = RegistryView(registry, lambda d: d.name)
    assert "nope" not in view
    assert view.get("nope") is None


def test_topology_spec_unknown_kind_lists_explicit_candidate():
    from repro.scenarios import TopologySpec

    with pytest.raises(ReproError) as excinfo:
        TopologySpec("rign")
    message = str(excinfo.value)
    assert "'explicit'" in message
    assert "did you mean 'ring'" in message


def test_discard_origin_rolls_back_and_allows_reregistration():
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("keep"))
    previous = set_current_origin("broken_plugin")
    try:
        registry.register(_descriptor("w1"))
        registry.register(_descriptor("w2"))
    finally:
        set_current_origin(previous)
    assert registry.discard_origin("broken_plugin") == ["w1", "w2"]
    assert registry.names() == ["keep"]
    registry.register(_descriptor("w1"))  # a retry does not trip "already registered"


def test_validate_params_accepts_known_and_rejects_unknown():
    registry = Registry("widget", noun="widget kind", param_noun="widget")
    registry.register(_descriptor("w", params=("a", "b")))
    registry.validate_params("w", {"a": 1})
    with pytest.raises(ReproError, match=r"widget 'w' does not accept parameter\(s\) \['c', 'z'\]"):
        registry.validate_params("w", {"z": 1, "c": 2, "a": 3})


def test_validate_params_none_schema_accepts_anything():
    descriptor = _descriptor("w", params=None)
    validate_params(descriptor, {"anything": 1})


def test_registry_view_is_live_and_projected():
    registry = Registry("widget", noun="widget kind")
    view = RegistryView(registry, lambda d: d.params)
    registry.register(_descriptor("w", params=("x",)))
    assert list(view) == ["w"]
    assert view["w"] == ("x",)
    assert "w" in view
    registry.register(_descriptor("v", params=()))
    assert list(view) == ["w", "v"]


def test_origin_attribution_during_plugin_import():
    registry = Registry("widget", noun="widget kind")
    registry.register(_descriptor("builtin-w"))
    previous = set_current_origin("some_plugin")
    try:
        registry.register(_descriptor("plugin-w"))
    finally:
        set_current_origin(previous)
    assert registry["builtin-w"].origin == "builtin"
    assert registry["plugin-w"].origin == "some_plugin"
    assert [d.name for d in registry.from_origin("some_plugin")] == ["plugin-w"]


# ---------------------------------------------------------------------- #
# The five global registries carry the built-in catalogue
# ---------------------------------------------------------------------- #
def test_builtin_protocols_registered_in_catalogue_order():
    assert PROTOCOLS.names() == ["register", "snapshot", "lattice", "consensus", "paxos"]
    assert PROTOCOLS["paxos"].has_tag("no-safety-claim")
    for descriptor in PROTOCOLS.descriptors():
        assert callable(descriptor.extras["schedule"])
        assert callable(descriptor.extras["judge"])
        assert set(descriptor.extras["defaults"]) == {"op_spacing", "max_time"}


def test_builtin_topologies_and_builtin_matchers():
    assert TOPOLOGIES.names() == [
        "figure1",
        "figure1-modified",
        "ring",
        "geo",
        "minority",
        "adversarial-partition",
        "random",
        "large-threshold",
        "multi-region",
    ]
    with_builtin = [
        d.name for d in TOPOLOGIES.descriptors() if "builtin" in d.extras
    ]
    assert "random" not in with_builtin
    assert len(with_builtin) == len(TOPOLOGIES) - 1


def test_builtin_delay_models_and_checkers():
    assert DELAY_MODELS.names() == [
        "fixed",
        "uniform",
        "partial-synchrony",
        "schedule-override",
    ]
    assert CHECKERS.names() == ["auto", "wing-gong", "dep-graph", "streaming"]


def test_scenario_registry_backs_the_catalogue():
    from repro.scenarios import scenario_names

    assert SCENARIOS.names() == scenario_names()
    assert "unidirectional-ring" in SCENARIOS
    spec = SCENARIOS["unidirectional-ring"].extras["spec"]
    assert spec.name == "unidirectional-ring"


def test_legacy_views_stay_consistent_with_registries():
    from repro.experiments import PROTOCOL_KINDS, PROTOCOL_PARAM_KEYS, WORKLOAD_DEFAULTS
    from repro.failures import TOPOLOGY_KINDS
    from repro.sim import DELAY_MODEL_KINDS
    from repro.traces.check import CHECKER_KINDS

    assert list(PROTOCOL_KINDS) == PROTOCOLS.names()
    assert PROTOCOL_PARAM_KEYS["register"] == ("classical", "push_interval", "relay")
    assert WORKLOAD_DEFAULTS["paxos"]["max_time"] == 1_500.0
    assert list(TOPOLOGY_KINDS) == TOPOLOGIES.names()
    assert callable(TOPOLOGY_KINDS["ring"])
    assert DELAY_MODEL_KINDS["uniform"] == ("min_delay", "max_delay")
    assert list(CHECKER_KINDS) == CHECKERS.names()
