"""Tests for the cluster orchestration layer (:mod:`repro.sim.runtime`)."""

import pytest

from repro.errors import OperationTimeoutError, SimulationError
from repro.sim import Cluster, FixedDelay, Process


class Counter(Process):
    """Counts "inc" messages; supports a blocking wait for a target count."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.count = 0

    def on_message(self, sender, message):
        if message == "inc":
            self.count += 1

    def bump_all(self):
        def gen():
            self.broadcast("inc")
            yield self.wait_until(lambda: self.count >= 1, "self inc")
            return self.count

        return self.start_operation("bump_all", None, gen())

    def wait_for_count(self, target):
        def gen():
            yield self.wait_until(lambda: self.count >= target, "count target")
            return self.count

        return self.start_operation("wait_for_count", target, gen())


def counter_factory(pid, network):
    return Counter(pid, network)


def test_cluster_requires_processes():
    with pytest.raises(SimulationError):
        Cluster([], counter_factory)


def test_invoke_and_run_until_done():
    cluster = Cluster(["a", "b", "c"], counter_factory, delay_model=FixedDelay(1.0))
    handle = cluster.invoke("a", "bump_all")
    assert cluster.run_until_done([handle], max_time=100.0)
    assert handle.done
    assert handle.result >= 1


def test_invoke_requires_operation_handle():
    class Bad(Process):
        def not_an_operation(self):
            return 42

    cluster = Cluster(["a"], lambda pid, net: Bad(pid, net))
    with pytest.raises(SimulationError):
        cluster.invoke("a", "not_an_operation")


def test_run_until_done_timeout_reports_false():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    handle = cluster.invoke("a", "wait_for_count", 100)
    assert not cluster.run_until_done([handle], max_time=10.0)
    assert not handle.done


def test_run_until_done_can_raise_on_timeout():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    handle = cluster.invoke("a", "wait_for_count", 100)
    with pytest.raises(OperationTimeoutError):
        cluster.run_until_done([handle], max_time=10.0, require_completion=True)


def test_invoke_at_defers_invocation():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    deferred = cluster.invoke_at(5.0, "a", "bump_all")
    cluster.run(max_time=2.0)
    assert deferred.handle is None
    assert not deferred.done
    cluster.run(max_time=20.0)
    assert deferred.done
    assert deferred.result >= 1


def test_history_collects_tracked_handles():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    cluster.invoke("a", "bump_all")
    cluster.invoke("b", "bump_all")
    cluster.run_until_done(max_time=50.0)
    history = cluster.history()
    assert len(history) == 2
    assert all(record.is_complete for record in history)


def test_message_counters_exposed():
    cluster = Cluster(["a", "b", "c"], counter_factory, delay_model=FixedDelay(1.0))
    cluster.invoke("a", "bump_all")
    cluster.run_until_done(max_time=50.0)
    # Drain the remaining in-flight deliveries before counting.
    cluster.run(max_time=50.0)
    assert cluster.messages_sent() >= 3
    assert cluster.messages_delivered() >= 3
    assert cluster.now > 0.0


def test_apply_failure_pattern_via_cluster():
    from repro.failures import FailurePattern

    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    cluster.apply_failure_pattern(FailurePattern(["b"]))
    assert cluster.network.is_crashed("b")
    handle = cluster.invoke("a", "bump_all")
    cluster.run_until_done([handle], max_time=20.0)
    assert handle.done


# --------------------------------------------------------------------------- #
# invoke_at on a process that crashed first (regression: aborted the run)
# --------------------------------------------------------------------------- #
def test_invoke_at_on_a_crashed_process_never_fires_instead_of_aborting():
    from repro.failures import FailurePattern

    cluster = Cluster(["a", "b", "c"], counter_factory, delay_model=FixedDelay(1.0))
    cluster.apply_failure_pattern(FailurePattern(["b"]), at_time=2.0)
    survivor = cluster.invoke_at(1.0, "b", "bump_all")  # fires before the crash
    victim = cluster.invoke_at(5.0, "b", "bump_all")  # scheduled after the crash
    bystander = cluster.invoke_at(6.0, "a", "bump_all")
    # This used to raise ProcessCrashedError out of the scheduler callback,
    # killing the whole simulation mid-run().
    cluster.run(max_time=50.0)
    assert survivor.handle is not None
    assert victim.handle is None
    assert victim.crashed
    assert not victim.done
    assert bystander.done


def test_deferred_on_resolve_fires_on_invocation_and_immediately_when_late():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    deferred = cluster.invoke_at(2.0, "a", "bump_all")
    seen = []
    deferred.on_resolve(lambda handle: seen.append(handle.kind))
    cluster.run(max_time=20.0)
    assert seen == ["bump_all"]
    late = []
    deferred.on_resolve(lambda handle: late.append(handle.done))
    assert late == [True]


def test_run_until_done_counts_completions_of_already_done_handles():
    cluster = Cluster(["a", "b"], counter_factory, delay_model=FixedDelay(1.0))
    first = cluster.invoke("a", "bump_all")
    assert cluster.run_until_done([first], max_time=50.0)
    # A second call watching the already-done handle returns immediately.
    assert cluster.run_until_done([first], max_time=50.0)
    assert cluster.run_until_done([], max_time=50.0)
