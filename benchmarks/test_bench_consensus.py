"""E5 — consensus under partial synchrony (Figure 6) vs the classical Paxos baseline.

Three series are regenerated:

* decision latency of the GQS consensus under every Figure 1 pattern;
* decision latency as a function of GST (decisions happen shortly after the
  network stabilises) and of the view-duration constant C;
* the classical request/response Paxos baseline under the same patterns, which
  fails to decide — the "who wins" comparison.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.checkers import check_consensus
from repro.experiments import run_consensus_workload, run_paxos_baseline_workload

from conftest import bench_once


def test_e5_consensus_under_figure1_patterns(benchmark, figure1_gqs):
    def experiment():
        rows = []
        for index, pattern in enumerate(figure1_gqs.fail_prone.patterns):
            result = run_consensus_workload(
                figure1_gqs, pattern=pattern, gst=25.0, seed=index, max_time=4_000.0
            )
            component = figure1_gqs.termination_component(pattern)
            verdict = check_consensus(result.history, required_to_terminate=component)
            rows.append(
                {
                    "pattern": pattern.name,
                    "decided": result.completed,
                    "agreement+validity": verdict.agreement and verdict.validity,
                    "mean latency": result.metrics.mean_latency,
                    "max latency": result.metrics.max_latency,
                    "messages": result.metrics.messages_sent,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E5: GQS consensus under the Figure 1 failure patterns (GST=25)",
        columns=["pattern", "decided", "agreement+validity", "mean latency", "max latency", "messages"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["decided"] and row["agreement+validity"] for row in rows)


def test_e5_decision_latency_vs_gst(benchmark, figure1_gqs):
    def experiment():
        rows = []
        pattern = figure1_gqs.fail_prone.patterns[0]
        for gst in (10.0, 50.0, 150.0):
            result = run_consensus_workload(
                figure1_gqs, pattern=pattern, gst=gst, seed=5, max_time=6_000.0
            )
            rows.append(
                {
                    "GST": gst,
                    "decided": result.completed,
                    "max decision latency": result.metrics.max_latency,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E5: decision latency vs GST (pattern f1)",
        columns=["GST", "decided", "max decision latency"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["decided"] for row in rows)
    # Decisions cannot systematically precede stabilisation: latency grows with GST.
    latencies = [row["max decision latency"] for row in rows]
    assert latencies[0] <= latencies[-1]


def test_e5_decision_latency_vs_view_duration(benchmark, figure1_gqs):
    def experiment():
        rows = []
        pattern = figure1_gqs.fail_prone.patterns[1]
        for view_duration in (2.0, 5.0, 10.0):
            result = run_consensus_workload(
                figure1_gqs,
                pattern=pattern,
                gst=20.0,
                view_duration=view_duration,
                seed=6,
                max_time=6_000.0,
            )
            rows.append(
                {
                    "C (view duration)": view_duration,
                    "decided": result.completed,
                    "max decision latency": result.metrics.max_latency,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E5: decision latency vs view-duration constant C (pattern f2)",
        columns=["C (view duration)", "decided", "max decision latency"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["decided"] for row in rows)


def test_e5_paxos_baseline_comparison(benchmark, figure1_gqs):
    def experiment():
        rows = []
        for index, pattern in enumerate(figure1_gqs.fail_prone.patterns):
            gqs_run = run_consensus_workload(
                figure1_gqs, pattern=pattern, gst=25.0, seed=30 + index, max_time=4_000.0
            )
            paxos_run = run_paxos_baseline_workload(
                figure1_gqs, pattern=pattern, max_time=700.0, seed=30 + index
            )
            rows.append(
                {
                    "pattern": pattern.name,
                    "GQS consensus decided": gqs_run.completed,
                    "classical Paxos decided": paxos_run.completed,
                }
            )
        # Sanity: in the failure-free case both decide.
        gqs_ok = run_consensus_workload(figure1_gqs, pattern=None, gst=10.0, seed=99).completed
        paxos_ok = run_paxos_baseline_workload(
            figure1_gqs, pattern=None, max_time=800.0, seed=99
        ).completed
        rows.append(
            {
                "pattern": "no failures",
                "GQS consensus decided": gqs_ok,
                "classical Paxos decided": paxos_ok,
            }
        )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E5: GQS consensus vs classical request/response Paxos",
        columns=["pattern", "GQS consensus decided", "classical Paxos decided"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    for row in rows:
        if row["pattern"] == "no failures":
            assert row["GQS consensus decided"] and row["classical Paxos decided"]
        else:
            assert row["GQS consensus decided"] and not row["classical Paxos decided"]
