"""E6 — admissibility of the three quorum conditions under random fail-prone systems.

The Monte Carlo sweep classifies random fail-prone systems by whether they
admit a classical quorum system, a strongly connected quorum system (QS+) and a
generalized quorum system, as the channel-disconnection probability grows.
Expected shape: GQS ≥ QS+ ≥ classical everywhere, with the gap opening as
channel failures become likely — the quantitative version of the paper's
"strictly weaker condition" message.  A companion series measures availability
of the *fixed* Figure 1 quorums under i.i.d. failures.
"""

from __future__ import annotations

import os

from repro.montecarlo import (
    admissibility_sweep,
    admissibility_table,
    reliability_sweep,
    reliability_table,
)

from conftest import bench_once

DISCONNECT_PROBS = (0.0, 0.1, 0.2, 0.3, 0.5)

# Worker processes for the Monte Carlo harnesses; the engine guarantees the
# measured tables are identical for every value, so raising this only changes
# the timing (e.g. REPRO_BENCH_JOBS=4 python -m pytest benchmarks/).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def test_e6_admissibility_sweep(benchmark):
    points = bench_once(
        benchmark,
        admissibility_sweep,
        DISCONNECT_PROBS,
        5,      # n
        3,      # patterns per system
        0.2,    # crash probability
        40,     # samples per point
        None,   # max_crashes
        0,      # seed
        jobs=BENCH_JOBS,
    )
    print()
    print(admissibility_table(points))
    for point in points:
        assert point.classical_fraction <= point.strong_fraction + 1e-9
        assert point.strong_fraction <= point.generalized_fraction + 1e-9
    # The gap between GQS and the classical condition opens once channels fail.
    assert points[-1].generalized_fraction > points[-1].classical_fraction


def test_e6_reliability_of_figure1_quorums(benchmark, figure1_gqs):
    estimates = bench_once(
        benchmark,
        reliability_sweep,
        figure1_gqs,
        (0.0, 0.1, 0.2, 0.3, 0.5),
        0.1,    # crash probability
        150,    # samples
        1,      # seed
        jobs=BENCH_JOBS,
    )
    print()
    print(reliability_table(estimates))
    for estimate in estimates:
        assert estimate.strong_availability <= estimate.gqs_availability + 1e-9
        assert estimate.gqs_availability <= estimate.classical_availability + 1e-9
    # With substantial channel failures the GQS availability notion keeps the
    # system usable strictly more often than the strongly connected one.
    assert estimates[-1].gqs_availability >= estimates[-1].strong_availability


def test_e6_strict_separation_witnesses(benchmark):
    """The GQS condition is *strictly* weaker than QS+: count separating systems.

    Figure 1 is the canonical witness; the Monte Carlo search finds further
    witnesses among randomly sampled asymmetric-partition fail-prone systems
    (uniformly random channel failures almost never separate the two
    conditions, so the structured distribution is the right place to look).
    """
    from repro.analysis import figure1_fail_prone_system
    from repro.montecarlo import gqs_strictly_weaker_examples
    from repro.quorums import gqs_exists, strong_system_exists

    def experiment():
        found = {}
        for n in (5, 6):
            witnesses = gqs_strictly_weaker_examples(n=n, num_patterns=3, samples=120, seed=2)
            found[n] = len(witnesses)
        return found

    found = bench_once(benchmark, experiment)
    figure1 = figure1_fail_prone_system()
    print()
    print("E6: systems admitting a GQS but no QS+ (120 asymmetric-partition samples per n)")
    for n, count in found.items():
        print("  n={}: {} witnesses".format(n, count))
    print("  Figure 1 separates the conditions:", gqs_exists(figure1) and not strong_system_exists(figure1))
    assert gqs_exists(figure1) and not strong_system_exists(figure1)
    assert sum(found.values()) >= 1
