"""E6 — admissibility of the three quorum conditions under random fail-prone systems.

The Monte Carlo sweep classifies random fail-prone systems by whether they
admit a classical quorum system, a strongly connected quorum system (QS+) and a
generalized quorum system, as the channel-disconnection probability grows.
Expected shape: GQS ≥ QS+ ≥ classical everywhere, with the gap opening as
channel failures become likely — the quantitative version of the paper's
"strictly weaker condition" message.  A companion series measures availability
of the *fixed* Figure 1 quorums under i.i.d. failures.
"""

from __future__ import annotations

import os

from repro.montecarlo import (
    admissibility_sweep,
    admissibility_table,
    reliability_sweep,
    reliability_table,
)

from conftest import bench_once

DISCONNECT_PROBS = (0.0, 0.1, 0.2, 0.3, 0.5)

# Worker processes for the Monte Carlo harnesses; the engine guarantees the
# measured tables are identical for every value, so raising this only changes
# the timing (e.g. REPRO_BENCH_JOBS=4 python -m pytest benchmarks/).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def test_e6_admissibility_sweep(benchmark):
    points = bench_once(
        benchmark,
        admissibility_sweep,
        DISCONNECT_PROBS,
        5,      # n
        3,      # patterns per system
        0.2,    # crash probability
        40,     # samples per point
        None,   # max_crashes
        0,      # seed
        jobs=BENCH_JOBS,
    )
    print()
    print(admissibility_table(points))
    for point in points:
        assert point.classical_fraction <= point.strong_fraction + 1e-9
        assert point.strong_fraction <= point.generalized_fraction + 1e-9
    # The gap between GQS and the classical condition opens once channels fail.
    assert points[-1].generalized_fraction > points[-1].classical_fraction


def test_e6_reliability_of_figure1_quorums(benchmark, figure1_gqs):
    estimates = bench_once(
        benchmark,
        reliability_sweep,
        figure1_gqs,
        (0.0, 0.1, 0.2, 0.3, 0.5),
        0.1,    # crash probability
        150,    # samples
        1,      # seed
        jobs=BENCH_JOBS,
    )
    print()
    print(reliability_table(estimates))
    for estimate in estimates:
        assert estimate.strong_availability <= estimate.gqs_availability + 1e-9
        assert estimate.gqs_availability <= estimate.classical_availability + 1e-9
    # With substantial channel failures the GQS availability notion keeps the
    # system usable strictly more often than the strongly connected one.
    assert estimates[-1].gqs_availability >= estimates[-1].strong_availability


def test_e6_engine_speedup(benchmark, figure1_gqs, bench_numbers):
    """Batched bitset engine vs the set-based reference: ≥10x samples/sec.

    The comparison is at *equal statistical output*: both engines consume the
    shard RNG stream draw for draw, so the counters they produce are asserted
    identical before the throughputs are compared.  The engines run
    interleaved and each timing keeps the best of three rounds, so a noisy
    stretch of CPU hits both sides rather than skewing the ratio; the
    recorded samples/sec feed the conftest regression guard against
    ``BENCH_seed.json``.
    """
    import gc
    import time

    from repro.montecarlo import estimate_reliability

    REL_SAMPLES = 3000
    ADM_SAMPLES = 1200
    ROUNDS = 3

    def run(engine):
        start = time.perf_counter()
        estimate = estimate_reliability(
            figure1_gqs,
            crash_prob=0.1,
            disconnect_prob=0.3,
            samples=REL_SAMPLES,
            seed=5,
            engine=engine,
        )
        rel_seconds = time.perf_counter() - start
        start = time.perf_counter()
        points = admissibility_sweep(
            (0.3,),
            5,      # n
            3,      # patterns per system
            0.2,    # crash probability
            ADM_SAMPLES,
            None,   # max_crashes
            3,      # seed
            engine=engine,
        )
        adm_seconds = time.perf_counter() - start
        return estimate, points, rel_seconds, adm_seconds

    def experiment():
        numbers = {}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(ROUNDS):
                for engine in ("set", "bitset"):
                    estimate, points, rel_seconds, adm_seconds = run(engine)
                    entry = numbers.setdefault(
                        engine,
                        {
                            "estimate": estimate,
                            "points": points,
                            "rel_seconds": rel_seconds,
                            "adm_seconds": adm_seconds,
                        },
                    )
                    assert entry["estimate"] == estimate and entry["points"] == points
                    entry["rel_seconds"] = min(entry["rel_seconds"], rel_seconds)
                    entry["adm_seconds"] = min(entry["adm_seconds"], adm_seconds)
                    gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        for entry in numbers.values():
            entry["reliability_samples_per_sec"] = round(
                REL_SAMPLES / entry.pop("rel_seconds"), 1
            )
            entry["admissibility_samples_per_sec"] = round(
                ADM_SAMPLES / entry.pop("adm_seconds"), 1
            )
        return numbers

    numbers = bench_once(benchmark, experiment)
    # Equal statistical output: identical counters, sample for sample.
    assert numbers["bitset"]["estimate"] == numbers["set"]["estimate"]
    assert numbers["bitset"]["points"] == numbers["set"]["points"]
    assert numbers["set"]["estimate"].samples == REL_SAMPLES
    speedups = {}
    for study in ("reliability", "admissibility"):
        metric = "{}_samples_per_sec".format(study)
        speedups[study] = numbers["bitset"][metric] / numbers["set"][metric]
    bench_numbers(
        set_reliability_samples_per_sec=numbers["set"]["reliability_samples_per_sec"],
        bitset_reliability_samples_per_sec=numbers["bitset"]["reliability_samples_per_sec"],
        set_admissibility_samples_per_sec=numbers["set"]["admissibility_samples_per_sec"],
        bitset_admissibility_samples_per_sec=numbers["bitset"]["admissibility_samples_per_sec"],
        reliability_speedup=round(speedups["reliability"], 2),
        admissibility_speedup=round(speedups["admissibility"], 2),
    )
    print()
    print("E6 engine speedup (identical counters, interleaved best-of-three):")
    for study, speedup in speedups.items():
        print(
            "  {}: set {:.0f} -> bitset {:.0f} samples/sec ({:.1f}x)".format(
                study,
                numbers["set"]["{}_samples_per_sec".format(study)],
                numbers["bitset"]["{}_samples_per_sec".format(study)],
                speedup,
            )
        )
    assert speedups["reliability"] >= 10.0, speedups
    assert speedups["admissibility"] >= 10.0, speedups


def test_e6_strict_separation_witnesses(benchmark):
    """The GQS condition is *strictly* weaker than QS+: count separating systems.

    Figure 1 is the canonical witness; the Monte Carlo search finds further
    witnesses among randomly sampled asymmetric-partition fail-prone systems
    (uniformly random channel failures almost never separate the two
    conditions, so the structured distribution is the right place to look).
    """
    from repro.analysis import figure1_fail_prone_system
    from repro.montecarlo import gqs_strictly_weaker_examples
    from repro.quorums import gqs_exists, strong_system_exists

    def experiment():
        found = {}
        for n in (5, 6):
            witnesses = gqs_strictly_weaker_examples(n=n, num_patterns=3, samples=120, seed=2)
            found[n] = len(witnesses)
        return found

    found = bench_once(benchmark, experiment)
    figure1 = figure1_fail_prone_system()
    print()
    print("E6: systems admitting a GQS but no QS+ (120 asymmetric-partition samples per n)")
    for n, count in found.items():
        print("  n={}: {} witnesses".format(n, count))
    print("  Figure 1 separates the conditions:", gqs_exists(figure1) and not strong_system_exists(figure1))
    assert gqs_exists(figure1) and not strong_system_exists(figure1)
    assert sum(found.values()) >= 1
