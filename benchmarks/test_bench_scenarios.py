"""Scenario subsystem — engine-backed execution of the declarative catalogue.

Measures a seeded scenario batch running through the parallel engine and pins
the jobs-independence contract on a real scenario: the per-run result table
produced with ``jobs=1`` (serial in-process fallback) is byte-identical to the
one produced with worker processes.  ``REPRO_BENCH_JOBS=N`` shards the
measured batch across ``N`` workers (default 1, like the other Monte Carlo
harnesses).
"""

from __future__ import annotations

import os

from repro.scenarios import run_scenario, sweep_scenarios, sweep_table

from conftest import bench_once

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
RUNS = 4
SEED = 7


def test_scenario_run_parallel_matches_serial(benchmark):
    serial = run_scenario("unidirectional-ring", runs=RUNS, seed=SEED, jobs=1)

    measured = bench_once(
        benchmark,
        run_scenario,
        "unidirectional-ring",
        runs=RUNS,
        seed=SEED,
        jobs=max(BENCH_JOBS, 2),
    )
    print()
    print(measured.run_table().to_text())
    assert measured.run_table().to_text() == serial.run_table().to_text()
    assert measured.ok


def test_scenario_catalogue_sweep(benchmark):
    results = bench_once(benchmark, sweep_scenarios, runs=1, seed=SEED, jobs=BENCH_JOBS)
    print()
    print(sweep_table(results).to_text())
    assert all(result.ok for result in results)
