"""Nemesis guidance benchmark: does search actually beat blind sampling?

The issue's acceptance criterion: on ``heavy-contention-register`` and
``adversarial-partition``, a fixed-budget hill-climb must find schedules with
*strictly* higher checker effort than equal-budget random search — i.e. the
fitness gradient (delay stretches stress the linearizability search, partition
patterns stall ``U_f``) is real and climbable, not noise.  Both hunts are
fully deterministic, so the margins below are stable numbers, recorded into
the benchmark snapshot for trend tracking.

The second half closes the loop on trustworthiness: every schedule the
hill-climb keeps must replay deterministically through the ordinary
``repro check`` path with verdicts matching the hunt-time inline ones.
"""

from __future__ import annotations

import pytest

from repro import api

from conftest import bench_once

BUDGET = 24
SEED_SCHEDULES = 2

#: (scenario, root seed): deterministic configurations where guidance is
#: expected to produce a strict margin at this budget.
GUIDED_CONFIGS = [
    ("heavy-contention-register", 4),
    ("adversarial-partition", 7),
]


def _hunt_pair(scenario, seed):
    hill = api.hunt(
        scenario, strategy="hill-climb", budget=BUDGET, seeds=SEED_SCHEDULES, seed=seed
    )
    rand = api.hunt(
        scenario, strategy="random", budget=BUDGET, seeds=SEED_SCHEDULES, seed=seed
    )
    return hill, rand


@pytest.mark.parametrize("scenario,seed", GUIDED_CONFIGS)
def test_hill_climb_strictly_beats_random(benchmark, bench_numbers, scenario, seed):
    hill, rand = bench_once(benchmark, _hunt_pair, scenario, seed)
    hill_explored = hill.best_row["explored"]
    rand_explored = rand.best_row["explored"]
    bench_numbers(
        hill_climb_explored=hill_explored,
        random_explored=rand_explored,
        hill_climb_score=hill.best_score,
        random_score=rand.best_score,
    )
    assert hill_explored > rand_explored, (
        "{} seed {}: hill-climb explored {} <= random {}".format(
            scenario, seed, hill_explored, rand_explored
        )
    )
    assert hill.best_score > rand.best_score


def test_surviving_mutants_replay_deterministically(benchmark, bench_numbers, tmp_path):
    """Every kept schedule re-verifies via the standard trace-check path."""
    directory = str(tmp_path / "corpus")

    def hunt_and_check():
        report = api.hunt(
            "heavy-contention-register",
            strategy="hill-climb",
            budget=BUDGET,
            seeds=SEED_SCHEDULES,
            seed=4,
            corpus_dir=directory,
        )
        return report, api.check_traces(directory)

    report, check = bench_once(benchmark, hunt_and_check)
    bench_numbers(survivors=check.traces, best_score=report.best_score)
    assert check.traces == len(report.corpus) > 0
    assert check.ok  # re-checked verdicts match the recorded inline ones
