"""Simulator throughput: the fast path vs the reference scheduler.

Message-heavy discrete-event workloads execute one scheduler event per
delivered message, so events/sec is the simulator's samples/sec analogue.  Two
workloads are measured, mirroring the two fast-path lanes:

* **fixed delay** — the delay model preserves FIFO order, so deliveries route
  through the pooled FIFO short-circuit deque instead of the heap; this is
  the headline ≥1.5x claim;
* **uniform delay** — randomized delays stay on the heap and benefit only
  from event pooling; measured for the snapshot record (no ratio assertion —
  the heap path's win is allocation churn, not asymptotics).

Like PR 7's engine speedup test, the two paths run interleaved with the best
of three rounds per side, at *equal output*: every round asserts the processed
event count identical before any throughput is compared.  The recorded
``events_per_sec`` metrics feed the conftest regression guard against
``BENCH_seed.json``.
"""

from __future__ import annotations

import gc
import time

from repro.sim import FixedDelay, Network, Process, UniformDelay
from repro.sim.events import FASTPATH_ENV

from conftest import bench_once

import os

RING_SIZE = 8
TOKENS_PER_PROCESS = 500
HOPS_PER_TOKEN = 30
ROUNDS = 3


class TokenRing(Process):
    """Forwards every received token to the next ring member until its TTL ends.

    The handler does near-zero protocol work on purpose: the benchmark should
    time the scheduler and network transport, not application logic.
    """

    def __init__(self, pid, network, ring):
        super().__init__(pid, network)
        self.ring = ring
        self.successor = ring[(ring.index(pid) + 1) % len(ring)]

    def on_message(self, sender, message):
        ttl = message
        if ttl > 0:
            self.send(self.successor, ttl - 1)


def _run_token_ring(delay_model):
    network = Network(delay_model=delay_model)
    ring = ["p{}".format(i) for i in range(RING_SIZE)]
    processes = {pid: TokenRing(pid, network, ring) for pid in ring}
    for pid in ring:
        for _ in range(TOKENS_PER_PROCESS):
            processes[pid].send(processes[pid].successor, HOPS_PER_TOKEN)
    start = time.perf_counter()
    network.run()
    seconds = time.perf_counter() - start
    return network.scheduler.events_processed, network.stats.messages_delivered, seconds


def _interleaved_events_per_sec(make_delay):
    """Best-of-ROUNDS events/sec per path, asserting equal event counts."""
    numbers = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    previous = os.environ.get(FASTPATH_ENV)
    try:
        for _ in range(ROUNDS):
            for label, fastpath in (("reference", "0"), ("fastpath", "1")):
                os.environ[FASTPATH_ENV] = fastpath
                events, delivered, seconds = _run_token_ring(make_delay())
                entry = numbers.setdefault(
                    label, {"events": events, "delivered": delivered, "seconds": seconds}
                )
                assert entry["events"] == events and entry["delivered"] == delivered
                entry["seconds"] = min(entry["seconds"], seconds)
                gc.collect()
    finally:
        if previous is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = previous
        if gc_was_enabled:
            gc.enable()
    assert numbers["fastpath"]["events"] == numbers["reference"]["events"]
    for entry in numbers.values():
        entry["events_per_sec"] = round(entry["events"] / entry.pop("seconds"), 1)
    return numbers


def test_sim_fixed_delay_message_heavy_speedup(benchmark, bench_numbers):
    """FIFO lane + pool vs the reference scheduler: ≥1.5x events/sec."""
    numbers = bench_once(
        benchmark, _interleaved_events_per_sec, lambda: FixedDelay(1.0)
    )
    speedup = numbers["fastpath"]["events_per_sec"] / numbers["reference"]["events_per_sec"]
    bench_numbers(
        reference_events_per_sec=numbers["reference"]["events_per_sec"],
        fastpath_events_per_sec=numbers["fastpath"]["events_per_sec"],
        events=numbers["reference"]["events"],
        speedup=round(speedup, 2),
    )
    print()
    print(
        "sim fixed-delay token ring ({} events): reference {:.0f} -> fastpath {:.0f} "
        "events/sec ({:.2f}x)".format(
            numbers["reference"]["events"],
            numbers["reference"]["events_per_sec"],
            numbers["fastpath"]["events_per_sec"],
            speedup,
        )
    )
    assert speedup >= 1.5, numbers


def test_sim_uniform_delay_message_heavy_throughput(benchmark, bench_numbers):
    """The heap lane with pooling: equal event counts, throughput recorded."""
    numbers = bench_once(
        benchmark, _interleaved_events_per_sec, lambda: UniformDelay(0.5, 2.0, seed=3)
    )
    bench_numbers(
        reference_events_per_sec=numbers["reference"]["events_per_sec"],
        fastpath_events_per_sec=numbers["fastpath"]["events_per_sec"],
        events=numbers["reference"]["events"],
    )
    print()
    print(
        "sim uniform-delay token ring ({} events): reference {:.0f} -> fastpath {:.0f} "
        "events/sec".format(
            numbers["reference"]["events"],
            numbers["reference"]["events_per_sec"],
            numbers["fastpath"]["events_per_sec"],
        )
    )
    # Pooling must never make the heap lane slower than the reference path by
    # more than measurement noise; the hard ratio claim lives on the FIFO lane.
    assert (
        numbers["fastpath"]["events_per_sec"]
        >= 0.8 * numbers["reference"]["events_per_sec"]
    ), numbers
