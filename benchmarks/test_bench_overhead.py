"""E4 — cost of the logical-clock machinery: classical ABD (Figure 2) vs GQS register (Figure 3).

Both registers run the same failure-free workload over the same threshold
quorum system; the harness reports messages per operation and mean latency.
Expected shape: the GQS register pays extra messages (CLOCK_REQ/RESP plus the
periodic pushes) and a small latency overhead, the price of tolerating
unidirectional connectivity.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.checkers import check_register_linearizability
from repro.experiments import compare_register_overhead
from repro.quorums import threshold_quorum_system

from conftest import bench_once


def test_e4_access_function_overhead(benchmark):
    classical_system = threshold_quorum_system(["a", "b", "c", "d", "e"], 2)
    runs = bench_once(benchmark, compare_register_overhead, classical_system, None, 2)

    table = ResultTable(
        title="E4: classical ABD vs GQS register (failure-free, n=5, k=2)",
        columns=[
            "protocol",
            "completed",
            "linearizable",
            "mean latency",
            "messages",
            "messages/op",
        ],
    )
    for name, result in runs.items():
        table.add_row(
            **{
                "protocol": name,
                "completed": result.completed,
                "linearizable": bool(
                    check_register_linearizability(result.history, initial_value=0)
                ),
                "mean latency": result.metrics.mean_latency,
                "messages": result.metrics.messages_sent,
                "messages/op": result.metrics.messages_per_operation(),
            }
        )
    print()
    print(table)

    classical = runs["classical_abd"]
    gqs = runs["gqs_register"]
    assert classical.completed and gqs.completed
    # Shape check: the GQS register costs more messages but stays in the same
    # latency ballpark (well under one order of magnitude).
    assert gqs.metrics.messages_sent > classical.metrics.messages_sent
    assert gqs.metrics.mean_latency < classical.metrics.mean_latency * 10
