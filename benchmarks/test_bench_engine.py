"""Engine — serial vs. parallel execution of the Monte Carlo sweeps.

The parallel experiment engine (:mod:`repro.engine`) shards sample budgets
across worker processes with deterministic per-shard seeds.  These harnesses
measure the sharded execution path and pin down its core contract on real
workloads: the merged tables produced with ``jobs=1`` (serial in-process
fallback) and ``jobs=2`` (multiprocessing pool) are byte-identical.  On
multi-core machines the parallel run is also the faster one; on single-core
CI the benchmark still validates determinism.
"""

from __future__ import annotations

from repro.analysis import figure1_quorum_system
from repro.montecarlo import (
    admissibility_sweep,
    admissibility_table,
    reliability_sweep,
    reliability_table,
)

from conftest import bench_once

DISCONNECT_PROBS = (0.0, 0.2, 0.5)
SAMPLES = 32
SEED = 7


def test_engine_admissibility_parallel_matches_serial(benchmark):
    serial = admissibility_table(
        admissibility_sweep(
            disconnect_probs=DISCONNECT_PROBS, samples=SAMPLES, seed=SEED, jobs=1
        )
    ).to_text()

    points = bench_once(
        benchmark,
        admissibility_sweep,
        disconnect_probs=DISCONNECT_PROBS,
        samples=SAMPLES,
        seed=SEED,
        jobs=2,
    )
    parallel = admissibility_table(points).to_text()
    print()
    print(parallel)
    assert parallel == serial


def test_engine_reliability_parallel_matches_serial(benchmark, figure1_gqs):
    serial = reliability_table(
        reliability_sweep(
            figure1_gqs, disconnect_probs=DISCONNECT_PROBS, samples=SAMPLES, seed=SEED, jobs=1
        )
    ).to_text()

    estimates = bench_once(
        benchmark,
        reliability_sweep,
        figure1_gqs,
        disconnect_probs=DISCONNECT_PROBS,
        samples=SAMPLES,
        seed=SEED,
        jobs=2,
    )
    parallel = reliability_table(estimates).to_text()
    print()
    print(parallel)
    assert parallel == serial
