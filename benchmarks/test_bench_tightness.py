"""E8 — end-to-end tightness verification (Theorems 1 + 2 jointly).

For a collection of fail-prone systems the harness runs the GQS decision
procedure and, when a GQS exists, simulates the register, snapshot and lattice
agreement protocols under every failure pattern, checking liveness inside
``U_f`` and the object specifications.  Expected shape: every system that
admits a GQS passes all protocol checks; systems that admit none are reported
as such (the lower bound says no implementation can exist).
"""

from __future__ import annotations

import os

from repro.analysis import (
    ResultTable,
    figure1_fail_prone_system,
    figure1_modified_fail_prone_system,
)
from repro.experiments import verify_tightness
from repro.failures import FailProneSystem, adversarial_partition_system, ring_unidirectional_system

from conftest import bench_once

# Worker processes for the per-pattern verification loop; the report is
# identical for every value (per-pattern seeding is independent of jobs).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def test_e8_tightness_on_figure1(benchmark):
    report = bench_once(
        benchmark,
        verify_tightness,
        figure1_fail_prone_system(),
        2,      # ops per process
        True,   # include snapshot
        True,   # include lattice agreement
        0,      # seed
        jobs=BENCH_JOBS,
    )
    print()
    print(report.to_table())
    assert report.gqs_exists
    assert report.all_patterns_ok


def test_e8_tightness_across_fail_prone_systems(benchmark):
    systems = [
        ("figure1", figure1_fail_prone_system()),
        ("figure1-modified", figure1_modified_fail_prone_system()),
        ("crash-threshold n=4 k=1", FailProneSystem.crash_threshold(["a", "b", "c", "d"], 1)),
        ("one-way splits n=4", adversarial_partition_system(4)),
        ("ring n=5", ring_unidirectional_system(5)),
    ]

    def experiment():
        rows = []
        for name, system in systems:
            report = verify_tightness(system, ops_per_process=1, seed=3, jobs=BENCH_JOBS)
            rows.append(
                {
                    "system": name,
                    "GQS exists": report.gqs_exists,
                    "patterns": len(system),
                    "all protocol checks pass": report.all_patterns_ok if report.gqs_exists else "n/a",
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E8: tightness verification across fail-prone systems",
        columns=["system", "GQS exists", "patterns", "all protocol checks pass"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)

    by_name = {row["system"]: row for row in rows}
    assert by_name["figure1"]["GQS exists"] and by_name["figure1"]["all protocol checks pass"]
    assert not by_name["figure1-modified"]["GQS exists"]
    assert by_name["crash-threshold n=4 k=1"]["all protocol checks pass"]
    assert by_name["one-way splits n=4"]["all protocol checks pass"]
    assert by_name["ring n=5"]["all protocol checks pass"]
