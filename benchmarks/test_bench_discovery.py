"""E7 — scalability of the GQS decision procedure.

Measures the runtime of :func:`repro.quorums.discover_gqs` as the number of
processes and the number of failure patterns grow, on threshold systems (many
patterns, crash-only) and on random systems with channel failures.  The
decision procedure is the tool a practitioner would run to check whether a
deployment's failure assumptions are tolerable at all, so its cost matters.

The ``pruned_vs_seed`` benchmarks pit the production search (bitmask
candidates + forward checking) against the seed backtracker
(``algorithm="naive"``: set-based candidate enumeration, prefix-only pruning)
on the production-size families of :mod:`repro.failures.generators`, and
**assert** a ≥10x reduction in explored search nodes plus a wall-clock win —
the acceptance bar of the discovery rework.
"""

from __future__ import annotations

import time

from repro.analysis import ResultTable
from repro.failures import (
    FailProneSystem,
    large_threshold_system,
    multi_region_system,
    random_fail_prone_system,
)
from repro.quorums import discover_gqs

from conftest import bench_once


def _compare_algorithms(build_system, label):
    """Run both algorithms on fresh system instances and report one table row.

    Each algorithm gets its own instance so the pruned path cannot feed off
    caches warmed by the naive run (or vice versa).
    """
    naive_system = build_system()
    started = time.perf_counter()
    naive = discover_gqs(naive_system, validate=False, algorithm="naive")
    naive_seconds = time.perf_counter() - started

    pruned_system = build_system()
    started = time.perf_counter()
    pruned = discover_gqs(pruned_system, validate=False)
    pruned_seconds = time.perf_counter() - started

    assert pruned.exists == naive.exists
    if pruned.exists:
        assert {f: (c.read_quorum, c.write_quorum) for f, c in pruned.choices.items()} == {
            f: (c.read_quorum, c.write_quorum) for f, c in naive.choices.items()
        }
    return {
        "family": label,
        "n": len(naive_system.processes),
        "|F|": len(naive_system),
        "GQS exists": pruned.exists,
        "seed nodes": naive.nodes_explored,
        "pruned nodes": pruned.nodes_explored,
        "node ratio": round(naive.nodes_explored / max(1, pruned.nodes_explored), 1),
        "seed s": round(naive_seconds, 3),
        "pruned s": round(pruned_seconds, 3),
    }


def test_e7_pruned_vs_seed_backtracker_on_large_families(benchmark):
    """The acceptance benchmark: ≥10x fewer explored nodes, lower wall-clock."""

    families = [
        (
            "multi-region(10x13, primary=11, epochs=50)",
            lambda: multi_region_system(
                regions=10, replicas_per_region=13, primary_replicas=11, epochs=50
            ),
        ),
        (
            "large-threshold(120, k=8, zones=6, blackout)",
            lambda: large_threshold_system(
                n=120, max_crashes=8, num_patterns=50, zones=6, catastrophic=True
            ),
        ),
    ]

    def experiment():
        return [_compare_algorithms(build, label) for label, build in families]

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: forward-checking search vs seed backtracker",
        columns=[
            "family", "n", "|F|", "GQS exists",
            "seed nodes", "pruned nodes", "node ratio", "seed s", "pruned s",
        ],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    for row in rows:
        assert row["GQS exists"]
        assert row["seed nodes"] >= 10 * row["pruned nodes"], row
        assert row["pruned s"] < row["seed s"], row


def test_e7_discovery_on_threshold_systems(benchmark):
    def experiment():
        rows = []
        for n in (4, 6, 8, 10):
            k = (n - 1) // 2
            system = FailProneSystem.crash_threshold(["p{}".format(i) for i in range(n)], k)
            started = time.perf_counter()
            result = discover_gqs(system)
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "|F|": len(system),
                    "GQS exists": result.exists,
                    "nodes explored": result.nodes_explored,
                    "seconds": elapsed,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: GQS discovery on crash-threshold systems",
        columns=["n", "k", "|F|", "GQS exists", "nodes explored", "seconds"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["GQS exists"] for row in rows)


def test_e7_discovery_on_random_systems(benchmark):
    def experiment():
        rows = []
        for n, num_patterns in ((4, 4), (6, 6), (8, 8), (10, 10)):
            admitted = 0
            nodes = 0
            started = time.perf_counter()
            samples = 10
            for seed in range(samples):
                system = random_fail_prone_system(
                    n=n,
                    num_patterns=num_patterns,
                    crash_prob=0.15,
                    disconnect_prob=0.25,
                    seed=seed,
                )
                result = discover_gqs(system, validate=False)
                admitted += int(result.exists)
                nodes += result.nodes_explored
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "n": n,
                    "|F|": num_patterns,
                    "samples": samples,
                    "admitting GQS": admitted,
                    "avg nodes": nodes / samples,
                    "seconds (total)": elapsed,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: GQS discovery on random fail-prone systems (p_disconnect=0.25)",
        columns=["n", "|F|", "samples", "admitting GQS", "avg nodes", "seconds (total)"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["seconds (total)"] < 60.0 for row in rows)


def test_e7_single_discovery_microbenchmark(benchmark):
    """Microbenchmark (many rounds): discovery on the Figure 1 system."""
    from repro.analysis import figure1_fail_prone_system

    system = figure1_fail_prone_system()
    result = benchmark(discover_gqs, system)
    assert result.exists


def test_e7_quotient_vs_full_at_production_scale(benchmark, bench_numbers):
    """Symmetry-quotiented discovery certifies n >= 1000; full is the baseline.

    The rotating-window threshold family is the production-scale symmetric
    family whose patterns stay cheap to *construct* at n >= 1000 (crash-only
    windows; the island families of the zoned/multi-region builders carry
    ~n^2 explicit channels per pattern, so building them — not searching
    them — is what stops scaling first).  Both algorithms must agree on the
    verdict and the witness; the quotient must explore >= 10x fewer nodes,
    which is the acceptance bar of the symmetry rework.
    """
    size, window = 1008, 48

    def experiment():
        quotient_system = large_threshold_system(n=size, max_crashes=window)
        started = time.perf_counter()
        quotient = discover_gqs(quotient_system, validate=False, algorithm="quotient")
        quotient_seconds = time.perf_counter() - started

        full_system = large_threshold_system(n=size, max_crashes=window)
        started = time.perf_counter()
        full = discover_gqs(full_system, validate=False, algorithm="full")
        full_seconds = time.perf_counter() - started
        return quotient, quotient_seconds, full, full_seconds

    quotient, quotient_seconds, full, full_seconds = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: quotient vs full discovery at n={}".format(size),
        columns=["algorithm", "nodes explored", "pattern orbits", "candidates permuted", "seconds"],
    )
    table.add_row(
        algorithm="full",
        **{"nodes explored": full.nodes_explored, "pattern orbits": "-",
           "candidates permuted": "-", "seconds": round(full_seconds, 3)},
    )
    table.add_row(
        algorithm="quotient",
        **{"nodes explored": quotient.nodes_explored,
           "pattern orbits": quotient.pattern_orbits,
           "candidates permuted": quotient.candidates_permuted,
           "seconds": round(quotient_seconds, 3)},
    )
    print()
    print(table)
    assert full.exists and quotient.exists
    assert {f: (c.read_quorum, c.write_quorum) for f, c in full.choices.items()} == {
        f: (c.read_quorum, c.write_quorum) for f, c in quotient.choices.items()
    }
    assert full.nodes_explored >= 10 * max(1, quotient.nodes_explored)
    bench_numbers(
        full_nodes_explored=full.nodes_explored,
        quotient_nodes_explored=quotient.nodes_explored,
        pattern_orbits=quotient.pattern_orbits,
        candidates_permuted=quotient.candidates_permuted,
        node_ratio=round(full.nodes_explored / max(1, quotient.nodes_explored), 1),
    )


def test_e7_churn_recertification_reuse(benchmark, bench_numbers):
    """A single join delta on n >= 500 recertifies with >= 90% candidate reuse.

    The join quarantines the newcomer (it lands in every pattern's crash set),
    so every pattern's residual structure survives modulo re-indexing and the
    watch-mode cache remapper must adopt all of it instead of recomputing.
    """
    from repro.quorums import MembershipDelta, watch_deltas

    def experiment():
        system = large_threshold_system(n=504, max_crashes=24)
        started = time.perf_counter()
        outcome = watch_deltas(system, [MembershipDelta(op="join", process="z-new")])
        return outcome, time.perf_counter() - started

    outcome, seconds = bench_once(benchmark, experiment)
    (verdict,) = outcome.verdicts
    table = ResultTable(
        title="E7: recertification after one join on n=504",
        columns=["delta", "exists", "patterns", "reused", "reuse", "seconds"],
    )
    table.add_row(
        delta=verdict.delta.describe(),
        exists=verdict.result.exists,
        patterns=verdict.patterns_total,
        reused=verdict.candidates_reused,
        reuse="{:.1%}".format(verdict.reuse_fraction),
        seconds=round(seconds, 3),
    )
    print()
    print(table)
    assert outcome.initial_result is not None and outcome.initial_result.exists
    assert verdict.result.exists
    assert verdict.reuse_fraction >= 0.9
    bench_numbers(
        churn_reuse_fraction=round(verdict.reuse_fraction, 6),
        churn_candidates_reused=verdict.candidates_reused,
        churn_patterns_total=verdict.patterns_total,
    )
