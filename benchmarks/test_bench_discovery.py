"""E7 — scalability of the GQS decision procedure.

Measures the runtime of :func:`repro.quorums.discover_gqs` as the number of
processes and the number of failure patterns grow, on threshold systems (many
patterns, crash-only) and on random systems with channel failures.  The
decision procedure is the tool a practitioner would run to check whether a
deployment's failure assumptions are tolerable at all, so its cost matters.
"""

from __future__ import annotations

import time

from repro.analysis import ResultTable
from repro.failures import FailProneSystem, random_fail_prone_system
from repro.quorums import discover_gqs

from conftest import bench_once


def test_e7_discovery_on_threshold_systems(benchmark):
    def experiment():
        rows = []
        for n in (4, 6, 8, 10):
            k = (n - 1) // 2
            system = FailProneSystem.crash_threshold(["p{}".format(i) for i in range(n)], k)
            started = time.perf_counter()
            result = discover_gqs(system)
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "|F|": len(system),
                    "GQS exists": result.exists,
                    "nodes explored": result.nodes_explored,
                    "seconds": elapsed,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: GQS discovery on crash-threshold systems",
        columns=["n", "k", "|F|", "GQS exists", "nodes explored", "seconds"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["GQS exists"] for row in rows)


def test_e7_discovery_on_random_systems(benchmark):
    def experiment():
        rows = []
        for n, num_patterns in ((4, 4), (6, 6), (8, 8), (10, 10)):
            admitted = 0
            nodes = 0
            started = time.perf_counter()
            samples = 10
            for seed in range(samples):
                system = random_fail_prone_system(
                    n=n,
                    num_patterns=num_patterns,
                    crash_prob=0.15,
                    disconnect_prob=0.25,
                    seed=seed,
                )
                result = discover_gqs(system, validate=False)
                admitted += int(result.exists)
                nodes += result.nodes_explored
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "n": n,
                    "|F|": num_patterns,
                    "samples": samples,
                    "admitting GQS": admitted,
                    "avg nodes": nodes / samples,
                    "seconds (total)": elapsed,
                }
            )
        return rows

    rows = bench_once(benchmark, experiment)
    table = ResultTable(
        title="E7: GQS discovery on random fail-prone systems (p_disconnect=0.25)",
        columns=["n", "|F|", "samples", "admitting GQS", "avg nodes", "seconds (total)"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["seconds (total)"] < 60.0 for row in rows)


def test_e7_single_discovery_microbenchmark(benchmark):
    """Microbenchmark (many rounds): discovery on the Figure 1 system."""
    from repro.analysis import figure1_fail_prone_system

    system = figure1_fail_prone_system()
    result = benchmark(discover_gqs, system)
    assert result.exists
