"""E3 — the GQS register (Figures 3-4) under the Figure 1 failure patterns.

For every failure pattern of the running example, a write/read workload is run
inside the termination component ``U_f``; the harness reports completion,
linearizability, mean/max operation latency and message counts.  The paper's
claim (Theorems 1, 3, 4): all operations terminate and the history is
linearizable.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.checkers import check_register_linearizability
from repro.experiments import run_register_workload

from conftest import bench_once


def run_all_patterns(figure1_gqs, ops_per_process=2):
    rows = []
    for index, pattern in enumerate(figure1_gqs.fail_prone.patterns):
        result = run_register_workload(
            figure1_gqs, pattern=pattern, ops_per_process=ops_per_process, seed=index
        )
        outcome = check_register_linearizability(result.history, initial_value=0)
        rows.append(
            {
                "pattern": pattern.name,
                "invokers": ",".join(str(p) for p in result.extra["invokers"]),
                "completed": result.completed,
                "linearizable": bool(outcome),
                "mean latency": result.metrics.mean_latency,
                "max latency": result.metrics.max_latency,
                "messages": result.metrics.messages_sent,
            }
        )
    return rows


def test_e3_register_under_figure1_patterns(benchmark, figure1_gqs):
    rows = bench_once(benchmark, run_all_patterns, figure1_gqs)
    table = ResultTable(
        title="E3: GQS register under the Figure 1 failure patterns",
        columns=[
            "pattern",
            "invokers",
            "completed",
            "linearizable",
            "mean latency",
            "max latency",
            "messages",
        ],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["completed"] and row["linearizable"] for row in rows)


def test_e3_register_failure_free_baseline(benchmark, figure1_gqs):
    """Failure-free run of the same workload (the latency baseline for E3)."""
    result = bench_once(
        benchmark, run_register_workload, figure1_gqs, None, 2
    )
    assert result.completed
    assert bool(check_register_linearizability(result.history, initial_value=0))
    print(
        "\nE3 baseline (no failures): mean latency {:.2f}, max latency {:.2f}, "
        "messages {}".format(
            result.metrics.mean_latency,
            result.metrics.max_latency,
            result.metrics.messages_sent,
        )
    )


def test_e3_push_interval_sensitivity(benchmark, figure1_gqs):
    """Operation latency grows with the state-propagation period (Figure 3, line 12)."""

    def sweep():
        rows = []
        for push_interval in (0.5, 1.0, 2.0, 4.0):
            result = run_register_workload(
                figure1_gqs,
                pattern=figure1_gqs.fail_prone.patterns[0],
                ops_per_process=2,
                push_interval=push_interval,
                seed=7,
            )
            rows.append(
                {
                    "push interval": push_interval,
                    "completed": result.completed,
                    "mean latency": result.metrics.mean_latency,
                    "messages": result.metrics.messages_sent,
                }
            )
        return rows

    rows = bench_once(benchmark, sweep)
    table = ResultTable(
        title="E3: sensitivity to the periodic push interval (pattern f1)",
        columns=["push interval", "completed", "mean latency", "messages"],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["completed"] for row in rows)
    # Pushing less often cannot make operations faster.
    assert rows[0]["mean latency"] <= rows[-1]["mean latency"] * 1.5
