"""E2 — threshold constructions (Examples 4 and 6) and Definition 1 ⊂ Definition 2.

Regenerates the table of threshold quorum systems for n ≤ 9 and k ≤ ⌊(n−1)/2⌋,
checking that each satisfies Definition 1 and that lifting it to a generalized
quorum system (Definition 2) succeeds unchanged.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.quorums import GeneralizedQuorumSystem, threshold_quorum_system

from conftest import bench_once


def build_and_validate(max_n: int = 9):
    rows = []
    for n in range(3, max_n + 1):
        for k in range(0, (n - 1) // 2 + 1):
            processes = ["p{}".format(i) for i in range(n)]
            classical = threshold_quorum_system(processes, k)
            lifted = GeneralizedQuorumSystem.from_classical(classical)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "read quorum size": n - k,
                    "write quorum size": k + 1,
                    "|R|": len(classical.read_quorums),
                    "|W|": len(classical.write_quorums),
                    "valid (Def 1)": classical.is_valid(),
                    "valid as GQS (Def 2)": lifted.is_valid(),
                }
            )
    return rows


def test_e2_threshold_quorum_systems(benchmark):
    rows = bench_once(benchmark, build_and_validate, 9)
    table = ResultTable(
        title="E2: threshold quorum systems (Example 6)",
        columns=[
            "n",
            "k",
            "read quorum size",
            "write quorum size",
            "|R|",
            "|W|",
            "valid (Def 1)",
            "valid as GQS (Def 2)",
        ],
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table)
    assert all(row["valid (Def 1)"] and row["valid as GQS (Def 2)"] for row in rows)
    assert len(rows) == sum((n - 1) // 2 + 1 for n in range(3, 10))
