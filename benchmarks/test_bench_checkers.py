"""Checker benchmarks: witness-first vs complete search, streaming reuse.

The trace subsystem makes the checkers a hot path of their own (``repro check``
re-judges whole directories of recorded histories), so this harness measures
them directly on the histories the register scenarios actually produce:

* the complete Wing–Gong search (the trusted slow path);
* the witness-first dependency-graph path
  (:func:`repro.checkers.check_register_witness_first`), which must deliver
  the same verdict while exploring a polynomial-size graph instead of a
  memoized exponential search — the harness asserts it wins on wall-clock;
* the streaming checker replaying a growing prefix, whose incremental closure
  re-uses all prior work instead of restarting the search per extension.
"""

from __future__ import annotations

import time

from repro.checkers import (
    StreamingRegisterChecker,
    check_register_linearizability,
    check_register_witness_first,
)
from repro.experiments import run_workload
from repro.scenarios import build_quorum_system, get_scenario

from conftest import bench_once


def _scenario_register_history(name, ops_per_process, seed=7):
    """A register history produced by a registry scenario's workload shape."""
    scenario = get_scenario(name)
    quorum_system = build_quorum_system(scenario)
    result = run_workload(
        "register",
        quorum_system,
        protocol_params=scenario.protocol.params,
        ops_per_process=ops_per_process,
        op_spacing=scenario.workload.op_spacing,
        max_time=scenario.workload.max_time,
        seed=seed,
    )
    assert result.completed
    return result.history


def _best_of(runs, func, *args, **kwargs):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        func(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best


def test_witness_first_beats_complete_search_on_scenario_history(benchmark):
    """The acceptance gate of the trace PR: on a heavy-contention registry
    history the dependency-graph witness path must (a) agree with the complete
    search and (b) be faster than it."""
    history = _scenario_register_history("heavy-contention-register", ops_per_process=6)

    complete = check_register_linearizability(history, initial_value=0)
    witness = bench_once(benchmark, check_register_witness_first, history, initial_value=0)
    assert witness.is_linearizable == complete.is_linearizable
    assert witness.reason == "dependency-graph witness accepted"
    # The witness graph touches one node per operation; the complete search
    # memoizes far more states on a contended history.
    assert witness.explored_states < complete.explored_states

    witness_time = _best_of(3, check_register_witness_first, history, initial_value=0)
    complete_time = _best_of(3, check_register_linearizability, history, initial_value=0)
    print(
        "\nwitness-first: {:.6f}s ({} states)  complete search: {:.6f}s ({} states)".format(
            witness_time, witness.explored_states, complete_time, complete.explored_states
        )
    )
    assert witness_time < complete_time


def test_complete_search_baseline(benchmark):
    """The complete search on the same history, for the comparison table."""
    history = _scenario_register_history("heavy-contention-register", ops_per_process=6)
    outcome = bench_once(benchmark, check_register_linearizability, history, initial_value=0)
    assert outcome.is_linearizable


def test_streaming_prefix_extension_reuses_closure(benchmark):
    """Replaying a growing history incrementally: one streaming checker fed
    record-by-record does the closure work once, while restarting the batch
    checker per prefix re-pays the whole search each time."""
    history = _scenario_register_history("unidirectional-ring", ops_per_process=4)
    records = sorted(history.records, key=lambda r: r.invoked_at)

    def incremental():
        checker = StreamingRegisterChecker(initial_value=0)
        for record in records:
            checker.append(record)
        return checker.check()

    outcome = bench_once(benchmark, incremental)
    assert outcome.is_linearizable == check_register_linearizability(
        history, initial_value=0
    ).is_linearizable
