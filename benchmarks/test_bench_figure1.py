"""E1 — the Figure 1 running example (Examples 2, 7, 8, 9).

Regenerates the paper's worked-example results: the Figure 1 triple is a valid
generalized quorum system with the termination components of Example 9, the
decision procedure rediscovers a GQS for ``F``, and the modified system ``F'``
admits none.
"""

from __future__ import annotations

from repro.analysis import (
    ResultTable,
    figure1_fail_prone_system,
    figure1_modified_fail_prone_system,
    figure1_quorum_system,
    run_all_examples,
)
from repro.quorums import discover_gqs
from repro.types import sorted_processes

from conftest import bench_once


def test_e1_figure1_validation(benchmark):
    """Validate the (F, R, W) of Figure 1 and compute every U_f."""

    def experiment():
        gqs = figure1_quorum_system()
        gqs.check()
        return {
            pattern.name: sorted_processes(gqs.termination_component(pattern))
            for pattern in gqs.fail_prone
        }

    components = bench_once(benchmark, experiment)
    table = ResultTable(title="E1: termination components U_f (Example 9)", columns=["pattern", "U_f"])
    for name, component in components.items():
        table.add_row(pattern=name, U_f=",".join(str(p) for p in component))
    print()
    print(table)
    assert components == {
        "f1": ["a", "b"],
        "f2": ["b", "c"],
        "f3": ["c", "d"],
        "f4": ["a", "d"],
    }


def test_e1_discovery_on_figure1(benchmark):
    """The decision procedure finds a GQS for F."""
    result = bench_once(benchmark, discover_gqs, figure1_fail_prone_system())
    assert result.exists and result.quorum_system.is_valid()


def test_e1_modified_system_has_no_gqs(benchmark):
    """Example 9: F' (channel (a, b) also fails) admits no GQS."""
    result = bench_once(benchmark, discover_gqs, figure1_modified_fail_prone_system())
    assert not result.exists


def test_e1_all_worked_examples(benchmark):
    """Replay every worked example of the paper."""
    outcomes = bench_once(benchmark, run_all_examples)
    table = ResultTable(title="E1: worked examples", columns=["example", "claim holds"])
    for outcome in outcomes:
        table.add_row(**{"example": outcome.example, "claim holds": outcome.holds})
    print()
    print(table)
    assert all(outcome.holds for outcome in outcomes)
