"""Shared fixtures for the benchmark harness (experiments E1-E8 of DESIGN.md)."""

from __future__ import annotations

import pytest

from repro.analysis import figure1_quorum_system
from repro.quorums import GeneralizedQuorumSystem


@pytest.fixture(scope="session")
def figure1_gqs() -> GeneralizedQuorumSystem:
    """The paper's running example, shared by the benchmarks."""
    return figure1_quorum_system()


def bench_once(benchmark, func, *args, **kwargs):
    """Run a (possibly slow) experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
