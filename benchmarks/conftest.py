"""Shared fixtures for the benchmark harness (experiments E1-E8 of DESIGN.md).

Besides the fixtures, this conftest gives the harness a memory: every
``bench_once`` timing — and any counter a test attaches via the
``bench_numbers`` fixture — is collected into a session-wide snapshot, and
when ``REPRO_BENCH_DIR`` is set the snapshot is written there as
``BENCH_<python>-<platform>.json`` (canonical JSON, atomic rename).  Without
the environment variable nothing is persisted, so local runs stay clean; CI
sets it and uploads the snapshot as an artifact, turning the benchmark
numbers from ephemeral terminal output into comparable records.  A seed
snapshot (``BENCH_seed.json``) is committed alongside as the first point of
the series.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import pytest

from repro.analysis import figure1_quorum_system
from repro.quorums import GeneralizedQuorumSystem

#: Bumped whenever the snapshot layout changes.
BENCH_SNAPSHOT_SCHEMA = 1

#: Session-wide accumulator: test name -> {metric: value}.
_RESULTS = {}

#: The committed first point of the snapshot series; throughput metrics in a
#: new snapshot are compared against it (see ``_throughput_regressions``).
SEED_SNAPSHOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_seed.json")


@pytest.fixture(scope="session")
def figure1_gqs() -> GeneralizedQuorumSystem:
    """The paper's running example, shared by the benchmarks."""
    return figure1_quorum_system()


def record_bench_numbers(name, **numbers):
    """Attach counters (explored states, nodes, scores...) to a snapshot entry."""
    entry = _RESULTS.setdefault(name, {})
    for key, value in numbers.items():
        entry[key] = value


@pytest.fixture
def bench_numbers(request):
    """Record named counters under the calling test's snapshot entry."""

    def record(**numbers):
        record_bench_numbers(request.node.name, **numbers)

    return record


def bench_once(benchmark, func, *args, **kwargs):
    """Run a (possibly slow) experiment exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        record_bench_numbers(benchmark.name, seconds=round(stats.stats.mean, 6))
    return result


def _snapshot_path(directory):
    label = "py{}-{}".format(platform.python_version(), sys.platform)
    return os.path.join(directory, "BENCH_{}.json".format(label))


#: Guarded metric-name substrings where bigger numbers are better; a value
#: falling more than 2x below the committed seed is a regression.
HIGHER_IS_BETTER = ("samples_per_sec", "events_per_sec", "reuse_fraction")

#: Guarded metric-name substrings where smaller numbers are better (search
#: effort); a value growing more than 2x above the committed seed is a
#: regression.  ``max(reference, 1)`` keeps a perfect seed of 0 explored
#: nodes from flagging every nonzero future value.
LOWER_IS_BETTER = ("nodes_explored",)


def _throughput_regressions(results):
    """Guarded metrics that moved more than 2x past the committed seed.

    Wall-clock seconds vary with workload sizes between revisions, so the
    guard only watches workload-independent counters: throughput metrics
    (``*samples_per_sec*``, ``*events_per_sec*``), the watch-mode
    ``*reuse_fraction*`` (all higher-is-better: a >2x drop is a regression)
    and discovery search effort (``*nodes_explored*``, lower-is-better: a
    >2x growth is a regression).
    """
    try:
        with open(SEED_SNAPSHOT, encoding="utf-8") as handle:
            baseline = json.load(handle).get("results", {})
    except (OSError, ValueError):
        return []
    regressions = []
    for name, entry in sorted(results.items()):
        for metric, value in sorted(entry.items()):
            if not isinstance(value, (int, float)):
                continue
            reference = baseline.get(name, {}).get(metric)
            if not isinstance(reference, (int, float)):
                continue
            higher = any(tag in metric for tag in HIGHER_IS_BETTER)
            lower = any(tag in metric for tag in LOWER_IS_BETTER)
            if higher and value * 2 < reference:
                regressions.append((name, metric, value, reference))
            elif lower and value > max(reference, 1) * 2:
                regressions.append((name, metric, value, reference))
    return regressions


def pytest_sessionfinish(session, exitstatus):
    """Persist the collected numbers when REPRO_BENCH_DIR asks for it.

    After writing the snapshot the throughput guard runs: if any recorded
    samples/sec metric regressed more than 2x below ``BENCH_seed.json`` the
    session is failed, so CI's bench smoke step catches engine slowdowns even
    when every functional assertion still passes.
    """
    directory = os.environ.get("REPRO_BENCH_DIR")
    if not directory or not _RESULTS:
        return
    snapshot = {
        "schema": BENCH_SNAPSHOT_SCHEMA,
        "python": platform.python_version(),
        "platform": sys.platform,
        "exit_status": int(exitstatus),
        "results": {
            name: dict(sorted(entry.items())) for name, entry in sorted(_RESULTS.items())
        },
    }
    os.makedirs(directory, exist_ok=True)
    path = _snapshot_path(directory)
    partial = "{}.tmp".format(path)
    with open(partial, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(partial, path)
    regressions = _throughput_regressions(snapshot["results"])
    if regressions:
        print("\nBench throughput regressed >2x below BENCH_seed.json:")
        for name, metric, value, reference in regressions:
            print("  {} {}: {} (seed: {})".format(name, metric, value, reference))
        session.exitstatus = 1
