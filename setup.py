"""Setuptools packaging for the ``repro`` library.

``pip install -e .`` makes ``import repro``, ``python -m repro`` and the
``repro`` console script work without the ``PYTHONPATH=src`` workaround; the
package layout is the standard src-layout, declared explicitly below so
offline/legacy editable installs keep working too.

The version is single-sourced from ``repro.__version__`` (parsed textually so
building a wheel never imports the package).
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    path = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-gqs",
    version=read_version(),
    description=(
        "Reproduction of 'Generalized Quorum Systems' (PODC 2025): failure "
        "model, GQS decision procedure, protocol simulation, and parallel "
        "Monte Carlo studies."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
