"""Setuptools packaging for the ``repro`` library.

``pip install -e .`` makes ``import repro`` and ``python -m repro`` work
without the ``PYTHONPATH=src`` workaround; the package layout is the standard
src-layout, declared explicitly below so offline/legacy editable installs keep
working too.
"""

from setuptools import find_packages, setup

setup(
    name="repro-gqs",
    version="1.0.0",
    description=(
        "Reproduction of 'Generalized Quorum Systems' (PODC 2025): failure "
        "model, GQS decision procedure, protocol simulation, and parallel "
        "Monte Carlo studies."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
)
